(** [limed] — the networked compile daemon.

    A {!t} listens on a Unix-domain socket and multiplexes any number of
    {!Client}s onto one shared {!Lime_service.Service.t}: one resident
    process owns the warm kernel cache, the artifact store and the domain
    pool, and every [limec --connect] round-trip is served from it at
    cache speed instead of paying a cold process start.

    The loop is a single-threaded [select] reactor with real robustness
    semantics rather than best-effort queueing:

    - {b admission control} — at most [sc_max_inflight] requests may be
      queued or running; the next one is refused {e immediately} with an
      [Overloaded] reply carrying a retry-after hint (scaled from the
      EWMA of recent request latency), so a burst degrades into explicit
      backpressure instead of an unbounded queue;
    - {b deadlines} — a request may carry a client-chosen deadline
      (milliseconds from admission).  Work that would start past its
      deadline is cancelled in the queue ({!Lime_service.Pool.cancel});
      work already running is abandoned — the client gets
      [Deadline_exceeded] and the eventual result is discarded;
    - {b idle timeouts} — a connection with no traffic and no in-flight
      requests for [sc_idle_timeout_s] is closed, so leaked clients
      cannot pin the daemon's fd table;
    - {b graceful drain} — on SIGTERM (via {!drain}, which is
      signal-safe) or a [Drain] frame the server stops accepting,
      finishes every in-flight request, flushes every reply, answers the
      drainer with a [Drain_ack] carrying the completed/dropped counts,
      removes the socket and returns from {!run}.

    Every request flows through the {!Lime_service.Trace} timeline
    ([server.accept], [server.queue_wait], [server.request] spans) and
    the [lime_server_*] metric families of the service's registry.

    {b Distributed tracing}: a Compile frame may carry a
    {!Wire.trace_ctx}.  For such requests the worker collects every span
    the job records ({!Lime_service.Trace.collect}), rebases them to
    admission time, roots them under a synthetic [server.request] span
    (with a [server.queue_wait] child) and ships the serialized buffer
    home in the Result frame — the client grafts it under its own request
    span for one merged timeline.  Untraced requests skip all of it.

    {b Observability plane}: with [sc_http_port] set, a loopback TCP
    listener is multiplexed into the same reactor speaking just enough
    HTTP/1.0 ({!Http}) for six endpoints — [GET /metrics] (canonical
    exposition, including windowed latency quantiles, exemplar-annotated
    histograms and the [lime_slo_*] family), [GET /healthz] ([200 ok]
    normally, [503 draining] once a drain begins), [GET /statusz] (a
    JSON snapshot: uptime, in-flight table with trace ids, queue depth,
    EWMA service time, cache-tier hit counts, flight-recorder
    occupancy), [GET /alertz] (SLO burn rates and alert states, see
    {!Lime_service.Slo}) and [GET /debug/slow] / [GET /debug/errors]
    (the flight recorder's retained requests with their span trees, see
    {!Flight}).  The plane stays up while draining and for
    [sc_drain_grace_s] after the last request finishes, so load
    balancers observe the readiness flip.  With [sc_access_log] set,
    every answered request appends one JSON line correlated to its
    trace id. *)

type config = {
  sc_socket : string;  (** Unix-domain socket path *)
  sc_jobs : int;  (** pool parallelism of an owned service (default 1) *)
  sc_max_inflight : int;
      (** admission bound: queued + running requests (default 64) *)
  sc_idle_timeout_s : float;  (** idle-connection timeout (default 300) *)
  sc_cache_dir : string option;
  sc_cache_capacity : int;  (** LRU capacity of an owned service *)
  sc_http_port : int option;
      (** loopback TCP port for the observability plane; [Some 0] binds
          an ephemeral port (read it back with {!http_port}); [None] =
          no HTTP listener (default) *)
  sc_access_log : string option;
      (** append one JSON line per answered request to this file *)
  sc_drain_grace_s : float;
      (** seconds to keep serving the observability plane after a drain
          completes, before the process exits (default 0) *)
  sc_flight_capacity : int;
      (** bound of each {!Flight} ring — errored and slowest requests
          retained for /debug and the post-mortem dump (default 32;
          must be at least 1) *)
  sc_flight_dump : string option;
      (** append the flight recorder's JSONL post-mortem to this file on
          SIGQUIT ({!request_flight_dump}) and on graceful drain *)
  sc_slos : Lime_service.Slo.def list;
      (** objectives evaluated over answered requests; [[]] selects the
          built-in defaults (99% availability, 95% under 1s) *)
}

val default_config : socket:string -> config

val configs : (string * Lime_gpu.Memopt.config) list
(** The canonical configuration-name table shared by [limec] and the
    wire protocol (["global"], ["local+pad+vec"], …, ["all"]). *)

val config_of_name : string -> Lime_gpu.Memopt.config option

type t

val create : ?service:Lime_service.Service.t -> config -> t
(** Bind and listen on [sc_socket] (a stale socket file is replaced) and
    register the [lime_server_*] metrics.  When [service] is given the
    daemon serves from it and does not shut it down; otherwise it owns a
    fresh service built from the config.  Raises [Unix.Unix_error] if
    the socket cannot be bound.  Clients may connect as soon as this
    returns, even before {!run} starts picking requests up. *)

val service : t -> Lime_service.Service.t
val socket_path : t -> string

val http_port : t -> int option
(** The bound observability-plane port ([None] when [sc_http_port] is
    [None]) — the actual port even when configured as ephemeral [0]. *)

val build_version : string
(** Human version string exported in [lime_build_info]. *)

val run : t -> unit
(** The reactor loop.  Blocks until a drain completes; single-shot
    ([Invalid_argument] on reuse). *)

val drain : t -> unit
(** Request a graceful drain from any domain or from a signal handler:
    stop accepting, finish in-flight work, flush, exit {!run}. *)

val request_flight_dump : t -> unit
(** Ask the reactor to append the flight recorder's retained entries to
    [sc_flight_dump] (a no-op when unset).  Async-signal-safe like
    {!drain} — this is what the SIGQUIT handler calls; the daemon keeps
    running afterwards. *)

type report = {
  rp_requests : int;  (** compile requests admitted *)
  rp_rejected : int;  (** refused with [Overloaded] *)
  rp_deadline : int;  (** answered [Deadline_exceeded] *)
  rp_completed : int;  (** answered [Result] or [Compile_error] *)
  rp_dropped : int;  (** reaped with no reply sent (dead client) *)
}

val report : t -> report
(** Lifetime totals; stable once {!run} has returned. *)
