(** Minimal HTTP/1.0 responder for the observability plane — see the
    interface. *)

type request = { hr_meth : string; hr_path : string; hr_query : string }

type response = {
  rs_status : int;
  rs_content_type : string;
  rs_body : string;
}

type parse_result = Partial | Request of request | Bad of string

let max_head = 16 * 1024

(* Headers end at the first blank line; tolerate bare-LF clients. *)
let head_end s =
  let rec find i =
    if i >= String.length s then None
    else if
      i + 3 < String.length s
      && s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some i
    else if i + 1 < String.length s && s.[i] = '\n' && s.[i + 1] = '\n' then
      Some i
    else find (i + 1)
  in
  find 0

let parse s =
  match head_end s with
  | None -> if String.length s > max_head then Bad "request head too large" else Partial
  | Some _ -> (
      let line =
        match String.index_opt s '\n' with
        | None -> s
        | Some i ->
            let l = String.sub s 0 i in
            if l <> "" && l.[String.length l - 1] = '\r' then
              String.sub l 0 (String.length l - 1)
            else l
      in
      match String.split_on_char ' ' line with
      | meth :: target :: _ when meth <> "" && target <> "" ->
          let path, query =
            match String.index_opt target '?' with
            | None -> (target, "")
            | Some i ->
                ( String.sub target 0 i,
                  String.sub target (i + 1) (String.length target - i - 1) )
          in
          if String.length path = 0 || path.[0] <> '/' then
            Bad "request target must be an absolute path"
          else Request { hr_meth = meth; hr_path = path; hr_query = query }
      | _ -> Bad "malformed request line")

let reason_of_status = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let response ?(content_type = "text/plain; charset=utf-8") status body =
  { rs_status = status; rs_content_type = content_type; rs_body = body }

let ok ?content_type body = response ?content_type 200 body

let to_string r =
  Printf.sprintf
    "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
     Connection: close\r\n\r\n%s"
    r.rs_status (reason_of_status r.rs_status) r.rs_content_type
    (String.length r.rs_body) r.rs_body

(* JSON string-body escaping for /statusz and the access log. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b
