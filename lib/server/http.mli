(** Minimal hand-written HTTP/1.0 responder for the daemon's
    observability plane.

    Deliberately tiny, in the same no-dependencies spirit as {!Wire}: the
    server multiplexes a TCP listener into its existing select reactor,
    accumulates bytes per connection, calls {!parse} until a full request
    head arrives, serves exactly one response ({!to_string}) and closes —
    [Connection: close] semantics, which every scraper and [curl] speak.
    Request bodies, keep-alive, chunked encoding and header inspection
    are intentionally out of scope.

    {!parse} is total and bounded: heads larger than 16 KiB are rejected
    as {!Bad} before further buffering, so a hostile peer cannot grow the
    buffer without limit. *)

type request = {
  hr_meth : string;  (** request method, e.g. ["GET"] *)
  hr_path : string;  (** absolute path, query string stripped *)
  hr_query : string;  (** raw query string, [""] when absent *)
}

type response = {
  rs_status : int;
  rs_content_type : string;
  rs_body : string;
}

type parse_result =
  | Partial  (** request head incomplete — feed more bytes *)
  | Request of request
  | Bad of string  (** malformed or oversized head; answer 400 and close *)

val parse : string -> parse_result
(** Parse the accumulated input of one connection.  Returns {!Request}
    once the head is complete (terminated by a blank line; bare-LF
    tolerated); everything after the request line is ignored. *)

val response : ?content_type:string -> int -> string -> response
(** [response status body]; [content_type] defaults to
    [text/plain; charset=utf-8]. *)

val ok : ?content_type:string -> string -> response
(** [response 200]. *)

val to_string : response -> string
(** Serialize with [Content-Length] and [Connection: close] headers. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal — used by the
    [/statusz] endpoint and the access log. *)
