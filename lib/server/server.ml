(** Unix-domain-socket compile daemon — see the interface. *)

module Service = Lime_service.Service
module Pool = Lime_service.Pool
module Metrics = Lime_service.Metrics
module Trace = Lime_service.Trace
module Digest = Lime_service.Digest
module Slo = Lime_service.Slo
module Diag = Lime_support.Diag
module Memopt = Lime_gpu.Memopt
module Pipeline = Lime_gpu.Pipeline

type config = {
  sc_socket : string;
  sc_jobs : int;
  sc_max_inflight : int;
  sc_idle_timeout_s : float;
  sc_cache_dir : string option;
  sc_cache_capacity : int;
  sc_http_port : int option;
  sc_access_log : string option;
  sc_drain_grace_s : float;
  sc_flight_capacity : int;
  sc_flight_dump : string option;
  sc_slos : Slo.def list;
}

(* The objectives a daemon watches when none are configured: five nines
   would be dishonest for a simulator, but 99% availability and 95% of
   successful requests under a second are tight enough that tests and ci
   can trip them deliberately (deadline-0 traffic, overload). *)
let default_slos =
  [
    { Slo.d_name = "availability"; d_kind = Slo.Availability; d_objective = 0.99 };
    { Slo.d_name = "latency"; d_kind = Slo.Latency 1.0; d_objective = 0.95 };
  ]

let default_config ~socket =
  {
    sc_socket = socket;
    sc_jobs = 1;
    sc_max_inflight = 64;
    sc_idle_timeout_s = 300.0;
    sc_cache_dir = None;
    sc_cache_capacity = 64;
    sc_http_port = None;
    sc_access_log = None;
    sc_drain_grace_s = 0.0;
    sc_flight_capacity = 32;
    sc_flight_dump = None;
    sc_slos = default_slos;
  }

(* Version string baked into [lime_build_info]; matches the CLI's. *)
let build_version = "1.0.0"

let configs =
  [
    ("global", Memopt.config_global);
    ("global+vec", Memopt.config_global_vector);
    ("local", Memopt.config_local);
    ("local+pad", Memopt.config_local_noconflict);
    ("local+pad+vec", Memopt.config_local_noconflict_vector);
    ("constant", Memopt.config_constant);
    ("constant+vec", Memopt.config_constant_vector);
    ("texture", Memopt.config_image);
    ("all", Memopt.config_all);
  ]

let config_of_name name = List.assoc_opt name configs

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

type conn = {
  cn_fd : Unix.file_descr;
  cn_reader : Wire.reader;
  mutable cn_out : string;  (** bytes queued for write *)
  mutable cn_off : int;  (** how much of [cn_out] is already written *)
  mutable cn_last : float;  (** last read activity *)
  mutable cn_greeted : bool;
  mutable cn_version : int;  (** negotiated protocol version; 0 pre-hello *)
  mutable cn_closing : bool;  (** flush what is queued, then close *)
  mutable cn_open : bool;
}

(** One observability-plane HTTP connection: accumulate the request head,
    serve one response, close ([Connection: close]). *)
type hconn = {
  hc_fd : Unix.file_descr;
  hc_buf : Buffer.t;
  mutable hc_out : string;
  mutable hc_off : int;
  mutable hc_last : float;
  mutable hc_open : bool;
}

type pending = {
  pd_conn : conn;
  pd_id : int;
  pd_worker : string;
  pd_name : string;
  pd_config : string;
  pd_digest : string;  (** content-addressed request digest, hex *)
  pd_trace : Wire.trace_ctx option;  (** propagated client trace context *)
  pd_placement : string option;  (** client-reported placement SPEC *)
  pd_deadline_ms : int option;
  pd_admitted : float;  (** wall clock at admission *)
  pd_admit_us : float;  (** trace timeline at admission *)
  pd_deadline : float option;  (** absolute wall clock *)
  pd_started : float Atomic.t;  (** set by the job when it begins; 0 = queued *)
  pd_spans : Trace.span list ref;
      (** spans the job recorded, filled by the worker before the wake *)
  pd_future : (Wire.artifact, Diag.t) result Pool.future;
  mutable pd_abandoned : bool;
      (** the client was already answered (deadline) or is gone; discard
          the eventual result *)
}

type counters = {
  m_connections : Metrics.counter;
  m_requests : Metrics.counter;
  m_rejects : Metrics.counter;
  m_deadline : Metrics.counter;
  m_completed : Metrics.counter;
  m_protocol_errors : Metrics.counter;
  m_queue_depth : Metrics.gauge;
  m_request_seconds : Metrics.histogram;
  m_queue_wait_seconds : Metrics.histogram;
  m_http_requests : Metrics.counter;
  m_dropped_spans : Metrics.counter;
  m_request_summary : Metrics.summary;
      (** windowed streaming quantiles over the same latencies as
          [m_request_seconds] *)
}

(** Per-SLO gauges, refreshed from {!Slo.evaluate} before every
    exposition and [/alertz] answer. *)
type slo_gauges = {
  sg_fast : Metrics.gauge;
  sg_slow : Metrics.gauge;
  sg_state : Metrics.gauge;  (** 0 = ok, 1 = warn, 2 = firing *)
  sg_good : Metrics.gauge;
  sg_bad : Metrics.gauge;
}

type report = {
  rp_requests : int;
  rp_rejected : int;
  rp_deadline : int;
  rp_completed : int;
  rp_dropped : int;
}

type t = {
  sr_cfg : config;
  sr_svc : Service.t;
  sr_owns_svc : bool;
  sr_listen : Unix.file_descr;
  sr_http : Unix.file_descr option;  (** TCP listener, observability plane *)
  sr_pipe_r : Unix.file_descr;  (** self-pipe: wakes select on completions *)
  sr_pipe_w : Unix.file_descr;
  sr_metrics : counters;
  sr_slo : Slo.t;
  sr_slo_gauges : (Slo.def * slo_gauges) list;
  sr_flight : Flight.t;
  sr_drain_req : bool Atomic.t;  (** set by {!drain} / signal handlers *)
  sr_flight_dump_req : bool Atomic.t;
      (** set by {!request_flight_dump} (SIGQUIT); served by the reactor *)
  sr_access : out_channel option;  (** JSONL access log *)
  sr_started : float;  (** wall clock at creation, for /statusz uptime *)
  mutable sr_conns : conn list;
  mutable sr_hconns : hconn list;
  mutable sr_active : pending list;
  mutable sr_draining : bool;
  mutable sr_drain_done_at : float option;
      (** when in-flight work hit zero while draining; the reactor lingers
          [sc_drain_grace_s] past this, serving HTTP only, so load
          balancers can observe /healthz flip to draining *)
  mutable sr_drain_acks : (conn * int) list;  (** Drain frames to answer *)
  mutable sr_drain_completed : int;
  mutable sr_ewma_s : float;  (** smoothed request latency, for retry hints *)
  mutable sr_dropped_spans_seen : int;
      (** high-water of [Trace.dropped_spans] already exported *)
  mutable sr_ran : bool;
  mutable sr_requests : int;
  mutable sr_rejected : int;
  mutable sr_deadline : int;
  mutable sr_completed : int;
  mutable sr_dropped : int;
}

let now () = Unix.gettimeofday ()

let register_metrics reg =
  {
    m_connections =
      Metrics.counter reg ~help:"client connections accepted"
        "lime_server_connections_total";
    m_requests =
      Metrics.counter reg ~help:"compile requests admitted"
        "lime_server_requests_total";
    m_rejects =
      Metrics.counter reg ~help:"compile requests shed with Overloaded"
        "lime_server_rejects_total";
    m_deadline =
      Metrics.counter reg ~help:"requests answered DeadlineExceeded"
        "lime_server_deadline_total";
    m_completed =
      Metrics.counter reg ~help:"requests answered (result or diagnostic)"
        "lime_server_completed_total";
    m_protocol_errors =
      Metrics.counter reg ~help:"malformed frames / protocol violations"
        "lime_server_protocol_errors_total";
    m_queue_depth =
      Metrics.gauge reg ~help:"requests queued or running right now"
        "lime_server_queue_depth";
    m_request_seconds =
      Metrics.histogram reg ~help:"admission-to-reply latency, seconds"
        "lime_server_request_seconds";
    m_queue_wait_seconds =
      Metrics.histogram reg ~help:"admission-to-start queue wait, seconds"
        "lime_server_queue_wait_seconds";
    m_http_requests =
      Metrics.counter reg ~help:"observability-plane HTTP requests served"
        "lime_server_http_requests_total";
    m_dropped_spans =
      Metrics.counter reg
        ~help:"trace spans evicted by the bounded span retention ring"
        "lime_trace_dropped_spans";
    m_request_summary =
      Metrics.summary reg
        ~help:
          "streaming quantiles of admission-to-reply latency, cumulative \
           and over rolling 1m/5m/1h windows"
        ~clock:Unix.gettimeofday "lime_server_request_seconds_summary";
  }

let register_slo_gauges reg defs =
  List.map
    (fun def ->
      let name = def.Slo.d_name in
      Metrics.set
        (Metrics.gauge reg
           ~help:"the good-fraction objective of this SLO"
           ~labels:[ ("slo", name) ] "lime_slo_objective")
        def.Slo.d_objective;
      ( def,
        {
          sg_fast =
            Metrics.gauge reg
              ~help:"error-budget burn rate per SLO and alert window"
              ~labels:[ ("slo", name); ("window", "fast") ]
              "lime_slo_burn_rate";
          sg_slow =
            Metrics.gauge reg
              ~labels:[ ("slo", name); ("window", "slow") ]
              "lime_slo_burn_rate";
          sg_state =
            Metrics.gauge reg
              ~help:"alert state per SLO: 0 = ok, 1 = warn, 2 = firing"
              ~labels:[ ("slo", name) ] "lime_slo_state";
          sg_good =
            Metrics.gauge reg
              ~help:"events counted for/against each SLO since start"
              ~labels:[ ("slo", name); ("result", "good") ]
              "lime_slo_events";
          sg_bad =
            Metrics.gauge reg
              ~labels:[ ("slo", name); ("result", "bad") ]
              "lime_slo_events";
        } ))
    defs

(* Refresh the lime_slo_* gauges from the evaluator and return the
   statuses, so /metrics and /alertz always agree. *)
let sync_slo_metrics t =
  let statuses = Slo.evaluate t.sr_slo in
  List.iter
    (fun st ->
      match
        List.find_opt
          (fun (d, _) -> d.Slo.d_name = st.Slo.st_def.Slo.d_name)
          t.sr_slo_gauges
      with
      | None -> ()
      | Some (_, g) ->
          Metrics.set g.sg_fast st.Slo.st_fast_burn;
          Metrics.set g.sg_slow st.Slo.st_slow_burn;
          Metrics.set g.sg_state
            (match st.Slo.st_state with
            | Slo.Healthy -> 0.0
            | Slo.Warn -> 1.0
            | Slo.Firing -> 2.0);
          Metrics.set g.sg_good (float_of_int st.Slo.st_good);
          Metrics.set g.sg_bad (float_of_int st.Slo.st_bad))
    statuses;
  statuses

let create ?service cfg =
  if cfg.sc_max_inflight < 1 then
    invalid_arg "Server.create: sc_max_inflight must be at least 1";
  if cfg.sc_idle_timeout_s <= 0.0 then
    invalid_arg "Server.create: sc_idle_timeout_s must be positive";
  if cfg.sc_flight_capacity < 1 then
    invalid_arg "Server.create: sc_flight_capacity must be at least 1";
  let svc, owns =
    match service with
    | Some s -> (s, false)
    | None ->
        ( Service.create ?cache_dir:cfg.sc_cache_dir
            ~capacity:cfg.sc_cache_capacity ~jobs:cfg.sc_jobs (),
          true )
  in
  (* replace a stale socket file from a crashed predecessor *)
  (try Unix.unlink cfg.sc_socket with Unix.Unix_error _ -> ());
  let listen = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen (Unix.ADDR_UNIX cfg.sc_socket);
     Unix.listen listen 64;
     Unix.set_nonblock listen
   with e ->
     (try Unix.close listen with Unix.Unix_error _ -> ());
     raise e);
  let pipe_r, pipe_w = Unix.pipe () in
  Unix.set_nonblock pipe_r;
  Unix.set_nonblock pipe_w;
  (* observability plane: a loopback TCP listener (port 0 = ephemeral,
     read back the bound port with {!http_port}) *)
  let http =
    match cfg.sc_http_port with
    | None -> None
    | Some port ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try
           Unix.setsockopt fd Unix.SO_REUSEADDR true;
           Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
           Unix.listen fd 64;
           Unix.set_nonblock fd
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           (try Unix.close listen with Unix.Unix_error _ -> ());
           (try Unix.unlink cfg.sc_socket with Unix.Unix_error _ -> ());
           raise e);
        Some fd
  in
  let access =
    Option.map
      (fun file ->
        open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 file)
      cfg.sc_access_log
  in
  let metrics = register_metrics (Service.registry svc) in
  (* always-on tracing: traced Compile frames need the pipeline/rewrite
     observers recording into the default tracer the moment they arrive;
     the retention ring bounds the cost of keeping it on (the bench gate
     holds the overhead under 5%) *)
  Trace.set_enabled Trace.default true;
  Trace.install ();
  (* fleet-identity gauge: constant 1, identity in the labels *)
  Metrics.set
    (Metrics.gauge (Service.registry svc)
       ~help:"build/version identity of this server (always 1)"
       ~labels:
         [
           ("version", build_version);
           ("protocol", string_of_int Wire.version);
           ("ocaml", Sys.ocaml_version);
         ]
       "lime_build_info")
    1.0;
  (* lets dashboards compute uptime and detect restarts from a scrape *)
  Metrics.set
    (Metrics.gauge (Service.registry svc)
       ~help:"unix time this process started" "lime_process_start_time_seconds")
    (Unix.gettimeofday ());
  let slo =
    Slo.create ~clock:Unix.gettimeofday
      (if cfg.sc_slos = [] then default_slos else cfg.sc_slos)
  in
  {
    sr_cfg = cfg;
    sr_svc = svc;
    sr_owns_svc = owns;
    sr_listen = listen;
    sr_http = http;
    sr_pipe_r = pipe_r;
    sr_pipe_w = pipe_w;
    sr_metrics = metrics;
    sr_slo = slo;
    sr_slo_gauges = register_slo_gauges (Service.registry svc) (Slo.defs slo);
    sr_flight = Flight.create ~capacity:cfg.sc_flight_capacity;
    sr_drain_req = Atomic.make false;
    sr_flight_dump_req = Atomic.make false;
    sr_access = access;
    sr_started = Unix.gettimeofday ();
    sr_conns = [];
    sr_hconns = [];
    sr_active = [];
    sr_draining = false;
    sr_drain_done_at = None;
    sr_drain_acks = [];
    sr_drain_completed = 0;
    sr_ewma_s = 0.0;
    sr_dropped_spans_seen = 0;
    sr_ran = false;
    sr_requests = 0;
    sr_rejected = 0;
    sr_deadline = 0;
    sr_completed = 0;
    sr_dropped = 0;
  }

let service t = t.sr_svc
let socket_path t = t.sr_cfg.sc_socket

let http_port t =
  Option.map
    (fun fd ->
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, port) -> port
      | _ -> 0)
    t.sr_http

let wake t =
  try ignore (Unix.write_substring t.sr_pipe_w "w" 0 1)
  with Unix.Unix_error _ -> ()
  (* EAGAIN: the pipe already holds a wakeup *)

let drain t =
  Atomic.set t.sr_drain_req true;
  wake t

(* async-signal-safe, like {!drain}: the SIGQUIT handler only flips the
   flag and pokes the self-pipe; the reactor does the file IO *)
let request_flight_dump t =
  Atomic.set t.sr_flight_dump_req true;
  wake t

let dump_flight t =
  match t.sr_cfg.sc_flight_dump with
  | None -> ()
  | Some file -> (
      try
        let oc =
          open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 file
        in
        Fun.protect
          ~finally:(fun () -> try close_out oc with Sys_error _ -> ())
          (fun () -> Flight.dump t.sr_flight oc)
      with Sys_error _ -> ())

let report t =
  {
    rp_requests = t.sr_requests;
    rp_rejected = t.sr_rejected;
    rp_deadline = t.sr_deadline;
    rp_completed = t.sr_completed;
    rp_dropped = t.sr_dropped;
  }

(* ------------------------------------------------------------------ *)
(* Access log                                                          *)
(* ------------------------------------------------------------------ *)

(* One JSONL record per answered request, flushed per line so a tailer
   (or the ci smoke) sees records as they happen.  [trace_id] is the
   propagated distributed-trace id — the join key into the client's
   merged Chrome trace and the /statusz table. *)
let log_access t ~id ~name ~worker ~config ~digest ~deadline_ms ~wait_s ~dur_s
    ~outcome ~origin ~trace_id ~placement =
  match t.sr_access with
  | None -> ()
  | Some oc ->
      let e = Http.json_escape in
      Printf.fprintf oc
        "{\"ts\":%.6f,\"id\":%d,\"name\":\"%s\",\"worker\":\"%s\",\
         \"config\":\"%s\",\"digest\":\"%s\",\"deadline_ms\":%s,\
         \"queue_wait_s\":%.6f,\"duration_s\":%.6f,\"outcome\":\"%s\",\
         \"origin\":\"%s\",\"trace_id\":\"%s\",\"placement\":%s}\n%!"
        (now ()) id (e name) (e worker) (e config) (e digest)
        (match deadline_ms with
        | None -> "null"
        | Some ms -> string_of_int ms)
        wait_s dur_s (e outcome) (e origin) (e trace_id)
        (match placement with
        | None -> "null"
        | Some spec -> Printf.sprintf "\"%s\"" (e spec))

let trace_id_of pd =
  match pd.pd_trace with None -> "" | Some tc -> tc.Wire.tc_trace_id

(* ------------------------------------------------------------------ *)
(* Exposition and /statusz                                             *)
(* ------------------------------------------------------------------ *)

(* Fold tracer-side drops into the Prometheus counter: a counter only
   goes up, so export the delta since the last sync. *)
let sync_trace_metrics t =
  let dropped = Trace.dropped_spans Trace.default in
  if dropped > t.sr_dropped_spans_seen then begin
    Metrics.inc t.sr_metrics.m_dropped_spans
      ~by:(dropped - t.sr_dropped_spans_seen);
    t.sr_dropped_spans_seen <- dropped
  end

let exposition t =
  sync_trace_metrics t;
  ignore (sync_slo_metrics t);
  Metrics.set t.sr_metrics.m_queue_depth
    (float_of_int (List.length t.sr_active));
  Service.expose t.sr_svc

let statusz_json t =
  let t_now = now () in
  let e = Http.json_escape in
  let stats = Service.stats t.sr_svc in
  let hits = stats.Lime_service.Kcache.hits
  and misses = stats.Lime_service.Kcache.misses in
  let hit_rate =
    if hits + misses = 0 then 0.0
    else float_of_int hits /. float_of_int (hits + misses)
  in
  let requests =
    t.sr_active
    |> List.map (fun pd ->
           let state =
             if Atomic.get pd.pd_started > 0.0 then "running" else "queued"
           in
           Printf.sprintf
             "{\"id\":%d,\"worker\":\"%s\",\"name\":\"%s\",\
              \"digest\":\"%s\",\"state\":\"%s\",\"age_s\":%.6f,\
              \"deadline_in_s\":%s,\"trace_id\":\"%s\"}"
             pd.pd_id (e pd.pd_worker) (e pd.pd_name) (e pd.pd_digest) state
             (t_now -. pd.pd_admitted)
             (match pd.pd_deadline with
             | None -> "null"
             | Some d -> Printf.sprintf "%.6f" (d -. t_now))
             (e (trace_id_of pd)))
    |> String.concat ","
  in
  Printf.sprintf
    "{\"uptime_s\":%.3f,\"draining\":%b,\"protocol_version\":%d,\
     \"version\":\"%s\",\"jobs\":%d,\"in_flight\":%d,\"max_inflight\":%d,\
     \"pool_queue_depth\":%d,\"ewma_service_s\":%.6f,\
     \"totals\":{\"admitted\":%d,\"completed\":%d,\"rejected\":%d,\
     \"deadline\":%d,\"dropped\":%d},\
     \"cache\":{\"hits\":%d,\"misses\":%d,\"disk_hits\":%d,\
     \"evictions\":%d,\"coalesced\":%d,\"hit_rate\":%.4f},\
     \"tunestore\":{\"configured\":%b},\
     \"trace\":{\"trace_id\":\"%s\",\"retention\":%d,\"dropped_spans\":%d},\
     \"flight\":{\"capacity\":%d,\"occupancy\":%d,\"evictions\":%d},\
     \"requests\":[%s]}\n"
    (t_now -. t.sr_started) t.sr_draining Wire.version (e build_version)
    (Service.jobs t.sr_svc)
    (List.length t.sr_active)
    t.sr_cfg.sc_max_inflight
    (Service.queue_depth t.sr_svc)
    t.sr_ewma_s t.sr_requests t.sr_completed t.sr_rejected t.sr_deadline
    t.sr_dropped hits misses (Service.disk_hits t.sr_svc)
    stats.Lime_service.Kcache.evictions stats.Lime_service.Kcache.coalesced
    hit_rate
    (Service.tunestore t.sr_svc <> None)
    (e (Trace.trace_id Trace.default))
    (Trace.retention Trace.default)
    (Trace.dropped_spans Trace.default)
    (Flight.capacity t.sr_flight)
    (Flight.occupancy t.sr_flight)
    (Flight.evictions t.sr_flight)
    requests

let alertz_json t =
  let statuses = sync_slo_metrics t in
  let e = Http.json_escape in
  let slo_json st =
    let d = st.Slo.st_def in
    Printf.sprintf
      "{\"name\":\"%s\",\"kind\":\"%s\",\"objective\":%g,%s\"state\":\"%s\",\
       \"fast_burn\":%.4f,\"slow_burn\":%.4f,\"good\":%d,\"bad\":%d}"
      (e d.Slo.d_name)
      (match d.Slo.d_kind with
      | Slo.Latency _ -> "latency"
      | Slo.Availability -> "availability")
      d.Slo.d_objective
      (match d.Slo.d_kind with
      | Slo.Latency thr -> Printf.sprintf "\"threshold_s\":%g," thr
      | Slo.Availability -> "")
      (Slo.state_name st.Slo.st_state)
      st.Slo.st_fast_burn st.Slo.st_slow_burn st.Slo.st_good st.Slo.st_bad
  in
  let firing = List.exists (fun st -> st.Slo.st_state = Slo.Firing) statuses in
  Printf.sprintf
    "{\"ts\":%.6f,\"healthy\":%b,\"fast_window_s\":%g,\"slow_window_s\":%g,\
     \"burn_factor\":%g,\"slos\":[%s]}\n"
    (now ()) (not firing) (Slo.fast_s t.sr_slo) (Slo.slow_s t.sr_slo)
    (Slo.burn_factor t.sr_slo)
    (String.concat "," (List.map slo_json statuses))

let flight_json entries =
  "[" ^ String.concat ",\n" (List.map Flight.entry_json entries) ^ "]\n"

let http_respond t (req : Http.request) =
  Metrics.inc t.sr_metrics.m_http_requests;
  if req.Http.hr_meth <> "GET" then
    Http.response 405 "only GET is served here\n"
  else
    match req.Http.hr_path with
    | "/metrics" ->
        Http.ok ~content_type:"text/plain; version=0.0.4; charset=utf-8"
          (exposition t)
    | "/healthz" ->
        if t.sr_draining then Http.response 503 "draining\n"
        else Http.ok "ok\n"
    | "/statusz" ->
        Http.ok ~content_type:"application/json" (statusz_json t)
    | "/alertz" ->
        Http.ok ~content_type:"application/json" (alertz_json t)
    | "/debug/slow" ->
        Http.ok ~content_type:"application/json"
          (flight_json (Flight.slowest t.sr_flight))
    | "/debug/errors" ->
        Http.ok ~content_type:"application/json"
          (flight_json (Flight.errors t.sr_flight))
    | _ ->
        Http.response 404
          "not found; try /metrics /healthz /statusz /alertz /debug/slow \
           /debug/errors\n"

(* ------------------------------------------------------------------ *)
(* HTTP connection IO                                                  *)
(* ------------------------------------------------------------------ *)

let kill_hconn hc =
  if hc.hc_open then begin
    hc.hc_open <- false;
    try Unix.close hc.hc_fd with Unix.Unix_error _ -> ()
  end

let flush_hconn hc =
  if hc.hc_open && hc.hc_out <> "" then begin
    let continue = ref true in
    while !continue && hc.hc_off < String.length hc.hc_out do
      match
        Unix.write_substring hc.hc_fd hc.hc_out hc.hc_off
          (String.length hc.hc_out - hc.hc_off)
      with
      | 0 -> continue := false
      | n -> hc.hc_off <- hc.hc_off + n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error _ ->
          kill_hconn hc;
          continue := false
    done;
    (* one response per connection: done writing = done *)
    if hc.hc_open && hc.hc_off >= String.length hc.hc_out then kill_hconn hc
  end

let read_hconn t hc =
  let buf = Bytes.create 4096 in
  let eof = ref false in
  (try
     let continue = ref true in
     while !continue do
       match Unix.read hc.hc_fd buf 0 (Bytes.length buf) with
       | 0 ->
           eof := true;
           continue := false
       | n ->
           hc.hc_last <- now ();
           Buffer.add_subbytes hc.hc_buf buf 0 n;
           if n < Bytes.length buf then continue := false
     done
   with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | Unix.Unix_error _ -> eof := true);
  if hc.hc_open && hc.hc_out = "" then begin
    match Http.parse (Buffer.contents hc.hc_buf) with
    | Http.Partial -> if !eof then kill_hconn hc
    | Http.Request req ->
        hc.hc_out <- Http.to_string (http_respond t req);
        flush_hconn hc
    | Http.Bad msg ->
        hc.hc_out <- Http.to_string (Http.response 400 (msg ^ "\n"));
        flush_hconn hc
  end
  else if !eof then kill_hconn hc

let accept_http t =
  match t.sr_http with
  | None -> ()
  | Some listen ->
      let continue = ref true in
      while !continue do
        match Unix.accept ~cloexec:true listen with
        | fd, _ ->
            Unix.set_nonblock fd;
            t.sr_hconns <-
              t.sr_hconns
              @ [
                  {
                    hc_fd = fd;
                    hc_buf = Buffer.create 256;
                    hc_out = "";
                    hc_off = 0;
                    hc_last = now ();
                    hc_open = true;
                  };
                ]
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            continue := false
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error _ -> continue := false
      done

(* ------------------------------------------------------------------ *)
(* Connection IO                                                       *)
(* ------------------------------------------------------------------ *)

let kill_conn c =
  if c.cn_open then begin
    c.cn_open <- false;
    try Unix.close c.cn_fd with Unix.Unix_error _ -> ()
  end

let flush_conn c =
  if c.cn_open then begin
    let continue = ref true in
    while !continue && c.cn_off < String.length c.cn_out do
      match
        Unix.write_substring c.cn_fd c.cn_out c.cn_off
          (String.length c.cn_out - c.cn_off)
      with
      | 0 -> continue := false
      | n -> c.cn_off <- c.cn_off + n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error _ -> kill_conn c; continue := false
    done;
    if c.cn_open && c.cn_off >= String.length c.cn_out then begin
      c.cn_out <- "";
      c.cn_off <- 0;
      if c.cn_closing then kill_conn c
    end
  end

let send c frame =
  if c.cn_open && not c.cn_closing then begin
    c.cn_out <- String.sub c.cn_out c.cn_off (String.length c.cn_out - c.cn_off)
                ^ Wire.encode frame;
    c.cn_off <- 0;
    flush_conn c
  end

let send_error t c ~id ~code ?(retry_after_ms = 0) msg =
  (match code with
  | Wire.Overloaded -> Metrics.inc t.sr_metrics.m_rejects
  | Wire.Deadline_exceeded -> Metrics.inc t.sr_metrics.m_deadline
  | Wire.Protocol_error -> Metrics.inc t.sr_metrics.m_protocol_errors
  | _ -> ());
  send c
    (Wire.Err
       { er_id = id; er_code = code; er_retry_after_ms = retry_after_ms; er_msg = msg })

(* ------------------------------------------------------------------ *)
(* Request lifecycle                                                   *)
(* ------------------------------------------------------------------ *)

let retry_after_ms t =
  let per_request = if t.sr_ewma_s > 0.0 then t.sr_ewma_s else 0.005 in
  let hint = per_request *. float_of_int (List.length t.sr_active + 1) *. 1e3 in
  max 1 (min 60_000 (int_of_float hint))

let expired pd t_now =
  match pd.pd_deadline with None -> false | Some d -> t_now >= d

(* Everything the reply needs is computed inside the pool job, so worker
   domains do the heavy lifting and the reactor only forwards bytes. *)
let admit t (c : conn) (r : Wire.compile_req) config =
  let svc = t.sr_svc in
  let t_now = now () in
  let pd_started = Atomic.make 0.0 in
  let pd_spans = ref [] in
  let digest =
    Digest.to_hex
      (Service.request_digest ~config ~worker:r.Wire.cr_worker
         r.Wire.cr_source)
  in
  (* spans are collected for every request — the flight recorder must be
     able to explain the slowest/errored request after the fact, traced
     or not; the bench overhead gate holds the always-on cost under the
     5% / 25µs budget.  They are only shipped home when the client
     propagated a trace context. *)
  let job () =
    Atomic.set pd_started (now ());
    let compute () =
      match
        Diag.protect (fun () ->
            Service.compile_ex svc ~config ~name:r.Wire.cr_name
              ~worker:r.Wire.cr_worker r.Wire.cr_source)
      with
      | Error d -> Error d
      | Ok (c, origin) ->
          let kernel = c.Pipeline.cp_kernel in
          Ok
            {
              Wire.ar_id = r.Wire.cr_id;
              ar_origin = Service.origin_name origin;
              ar_digest = digest;
              ar_kernel = kernel.Lime_gpu.Kernel.k_name;
              ar_parallel = kernel.Lime_gpu.Kernel.k_parallel;
              ar_opencl = c.Pipeline.cp_opencl;
              ar_placements = Memopt.describe c.Pipeline.cp_decisions;
              ar_spans = "";
            }
    in
    let res, spans = Trace.collect Trace.default compute in
    pd_spans := spans;
    wake t;
    res
  in
  let pd =
    {
      pd_conn = c;
      pd_id = r.Wire.cr_id;
      pd_worker = r.Wire.cr_worker;
      pd_name = r.Wire.cr_name;
      pd_config = r.Wire.cr_config;
      pd_digest = digest;
      pd_trace = r.Wire.cr_trace;
      pd_placement = r.Wire.cr_placement;
      pd_deadline_ms = r.Wire.cr_deadline_ms;
      pd_admitted = t_now;
      pd_admit_us = Trace.now_us Trace.default;
      pd_deadline =
        Option.map (fun ms -> t_now +. (float_of_int ms /. 1e3)) r.Wire.cr_deadline_ms;
      pd_started;
      pd_spans;
      pd_future = Pool.submit (Service.pool svc) job;
      pd_abandoned = false;
    }
  in
  Metrics.inc t.sr_metrics.m_requests;
  t.sr_requests <- t.sr_requests + 1;
  t.sr_active <- t.sr_active @ [ pd ]

let handle_frame t (c : conn) (frame : Wire.frame) =
  match frame with
  | Wire.Hello v ->
      if c.cn_greeted then begin
        send_error t c ~id:0 ~code:Wire.Protocol_error "duplicate hello";
        c.cn_closing <- true
      end
      else if v < 1 then begin
        send_error t c ~id:0 ~code:Wire.Protocol_error
          (Printf.sprintf "unsupported protocol version %d (speaking %d)" v
             Wire.version);
        c.cn_closing <- true
      end
      else begin
        (* negotiate down to the older endpoint: the client sends the
           highest version it speaks, the ack picks the conversation
           version.  A v1-negotiated reply never carries v2 fields. *)
        c.cn_greeted <- true;
        c.cn_version <- min v Wire.version;
        send c (Wire.Hello_ack c.cn_version)
      end
  | _ when not c.cn_greeted ->
      send_error t c ~id:0 ~code:Wire.Protocol_error
        "first frame must be a hello";
      c.cn_closing <- true
  | Wire.Compile r ->
      let log_shed outcome =
        (* a shed request is a broken promise too: it burns the
           availability budget even though it never entered the queue *)
        Slo.record t.sr_slo ~ok:false ~duration_s:0.0;
        log_access t ~id:r.Wire.cr_id ~name:r.Wire.cr_name
          ~worker:r.Wire.cr_worker ~config:r.Wire.cr_config ~digest:""
          ~deadline_ms:r.Wire.cr_deadline_ms ~wait_s:0.0 ~dur_s:0.0 ~outcome
          ~origin:""
          ~trace_id:
            (match r.Wire.cr_trace with
            | None -> ""
            | Some tc -> tc.Wire.tc_trace_id)
          ~placement:r.Wire.cr_placement
      in
      if t.sr_draining then begin
        send_error t c ~id:r.Wire.cr_id ~code:Wire.Draining
          "server is draining";
        log_shed "draining"
      end
      else begin
        match config_of_name r.Wire.cr_config with
        | None ->
            send_error t c ~id:r.Wire.cr_id ~code:Wire.Compile_error
              (Printf.sprintf "unknown config %s; available: %s"
                 r.Wire.cr_config
                 (String.concat ", " (List.map fst configs)));
            log_shed "unknown-config"
        | Some config ->
            if List.length t.sr_active >= t.sr_cfg.sc_max_inflight then begin
              t.sr_rejected <- t.sr_rejected + 1;
              send_error t c ~id:r.Wire.cr_id ~code:Wire.Overloaded
                ~retry_after_ms:(retry_after_ms t)
                (Printf.sprintf "admission queue full (%d in flight)"
                   (List.length t.sr_active));
              log_shed "overloaded"
            end
            else admit t c r config
      end
  | Wire.Stats id -> send c (Wire.Stats_reply (id, exposition t))
  | Wire.Drain id ->
      t.sr_draining <- true;
      t.sr_drain_acks <- t.sr_drain_acks @ [ (c, id) ]
  | Wire.Hello_ack _ | Wire.Result _ | Wire.Err _ | Wire.Stats_reply _
  | Wire.Drain_ack _ ->
      send_error t c ~id:0 ~code:Wire.Protocol_error
        "server-to-client frame on the request path";
      c.cn_closing <- true

let read_conn t (c : conn) =
  let buf = Bytes.create 65536 in
  let eof = ref false in
  (try
     let continue = ref true in
     while !continue do
       match Unix.read c.cn_fd buf 0 (Bytes.length buf) with
       | 0 ->
           eof := true;
           continue := false
       | n ->
           c.cn_last <- now ();
           Wire.feed c.cn_reader buf n;
           (* keep draining the fd until EAGAIN so one select round picks
              up everything a pipelining client sent *)
           if n < Bytes.length buf then continue := false
     done
   with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | Unix.Unix_error _ -> eof := true);
  (* parse every complete frame from this read before running any work:
     admission decisions depend only on arrival order *)
  let parsing = ref (c.cn_open && not c.cn_closing) in
  while !parsing do
    match Wire.next c.cn_reader with
    | Ok (Some frame) ->
        handle_frame t c frame;
        if c.cn_closing || not c.cn_open then parsing := false
    | Ok None -> parsing := false
    | Error e ->
        send_error t c ~id:0 ~code:Wire.Protocol_error (Wire.error_to_string e);
        c.cn_closing <- true;
        parsing := false
  done;
  if !eof then begin
    (* the peer is gone: discard any result still in flight for it *)
    List.iter
      (fun pd -> if pd.pd_conn == c then pd.pd_abandoned <- true)
      t.sr_active;
    kill_conn c
  end

let accept_loop t =
  let continue = ref true in
  while !continue do
    match Unix.accept ~cloexec:true t.sr_listen with
    | fd, _ ->
        Trace.with_span Trace.default ~cat:"server" "server.accept" (fun () ->
            Unix.set_nonblock fd;
            Metrics.inc t.sr_metrics.m_connections;
            t.sr_conns <-
              t.sr_conns
              @ [
                  {
                    cn_fd = fd;
                    cn_reader = Wire.reader ();
                    cn_out = "";
                    cn_off = 0;
                    cn_last = now ();
                    cn_greeted = false;
                    cn_version = 0;
                    cn_closing = false;
                    cn_open = true;
                  };
                ])
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> continue := false
  done

(* The span buffer a traced request ships home inside its Result frame:
   a synthetic [server.request] root covering admission-to-reply (0 =
   admission), a [server.queue_wait] child, and every span the job
   recorded — rebased to admission and clamped into the root's window
   (the trace clock is CPU time, which can run ahead of the wall-clock
   request duration), with job-side roots reparented under the synthetic
   root so the client grafts one well-nested subtree.  The same tree is
   what the flight recorder retains for /debug and the post-mortem
   dump. *)
let span_tree pd ~t_now =
  let dur_us = Float.max 1.0 ((t_now -. pd.pd_admitted) *. 1e6) in
  let clamp v = Float.min (Float.max 0.0 v) dur_us in
  let rebased =
    List.map
      (fun sp ->
        let b = clamp (sp.Trace.sp_begin_us -. pd.pd_admit_us) in
        let e =
          if sp.Trace.sp_end_us < 0.0 then b
          else clamp (sp.Trace.sp_end_us -. pd.pd_admit_us)
        in
        { sp with Trace.sp_begin_us = b; sp_end_us = Float.max b e })
      !(pd.pd_spans)
  in
  let ids = List.map (fun sp -> sp.Trace.sp_id) rebased in
  let max_id = List.fold_left (fun a sp -> max a sp.Trace.sp_id) 0 rebased in
  let root_id = max_id + 1 and qw_id = max_id + 2 in
  let reparented =
    List.map
      (fun sp ->
        if List.mem sp.Trace.sp_parent ids then sp
        else { sp with Trace.sp_parent = root_id })
      rebased
  in
  let started = Atomic.get pd.pd_started in
  let wait_us =
    clamp
      (if started > 0.0 then (started -. pd.pd_admitted) *. 1e6 else dur_us)
  in
  let root =
    {
      Trace.sp_id = root_id;
      sp_parent = -1;
      sp_name = "server.request";
      sp_cat = "server";
      sp_args =
        [
          ("worker", pd.pd_worker);
          ("request_id", string_of_int pd.pd_id);
          ("trace_id", trace_id_of pd);
        ];
      sp_begin_us = 0.0;
      sp_end_us = dur_us;
    }
  in
  let queue_wait =
    {
      Trace.sp_id = qw_id;
      sp_parent = root_id;
      sp_name = "server.queue_wait";
      sp_cat = "server";
      sp_args = [];
      sp_begin_us = 0.0;
      sp_end_us = wait_us;
    }
  in
  root :: queue_wait :: reparented

let span_buffer pd ~t_now = Trace.spans_to_wire (span_tree pd ~t_now)

(* Answer one settled (or expired) pending request.  Returns [true] when
   the entry is finished and should leave the active list. *)
let reap_one t pd =
  let t_now = now () in
  let finish ~status ?(origin = "") reply =
    let dur_s = t_now -. pd.pd_admitted in
    (match reply with
    | Some frame ->
        send pd.pd_conn frame;
        let exemplar =
          match trace_id_of pd with "" -> None | tid -> Some tid
        in
        Metrics.observe ?exemplar t.sr_metrics.m_request_seconds dur_s;
        Metrics.observe_summary t.sr_metrics.m_request_summary dur_s;
        t.sr_ewma_s <-
          (if t.sr_ewma_s = 0.0 then dur_s
           else (0.8 *. t.sr_ewma_s) +. (0.2 *. dur_s))
    | None -> ());
    let started = Atomic.get pd.pd_started in
    let wait_s =
      if started > 0.0 then started -. pd.pd_admitted else dur_s
    in
    Metrics.observe t.sr_metrics.m_queue_wait_seconds wait_s;
    Trace.complete Trace.default ~cat:"server" ~ts_us:pd.pd_admit_us
      ~dur_us:(wait_s *. 1e6) "server.queue_wait";
    Trace.complete Trace.default ~cat:"server"
      ~args:[ ("worker", pd.pd_worker); ("status", status) ]
      ~ts_us:pd.pd_admit_us ~dur_us:(dur_s *. 1e6) "server.request";
    log_access t ~id:pd.pd_id ~name:pd.pd_name ~worker:pd.pd_worker
      ~config:pd.pd_config ~digest:pd.pd_digest
      ~deadline_ms:pd.pd_deadline_ms ~wait_s ~dur_s ~outcome:status ~origin
      ~trace_id:(trace_id_of pd) ~placement:pd.pd_placement;
    Slo.record t.sr_slo ~ok:(status = "ok") ~duration_s:dur_s;
    Flight.record t.sr_flight
      ~spans:(fun () -> span_tree pd ~t_now)
      {
        Flight.fe_ts = t_now;
        fe_id = pd.pd_id;
        fe_worker = pd.pd_worker;
        fe_name = pd.pd_name;
        fe_config = pd.pd_config;
        fe_digest = pd.pd_digest;
        fe_trace_id = trace_id_of pd;
        fe_deadline_ms = pd.pd_deadline_ms;
        fe_wait_s = wait_s;
        fe_dur_s = dur_s;
        fe_outcome = status;
        fe_origin = origin;
        fe_spans = [];
      };
    if t.sr_draining then t.sr_drain_completed <- t.sr_drain_completed + 1;
    true
  in
  match Pool.poll pd.pd_future with
  | None ->
      (* still queued or running; enforce the deadline *)
      if pd.pd_abandoned || not (expired pd t_now) then false
      else if Pool.cancel pd.pd_future then begin
        t.sr_deadline <- t.sr_deadline + 1;
        send_error t pd.pd_conn ~id:pd.pd_id ~code:Wire.Deadline_exceeded
          "deadline expired before the request started";
        finish ~status:"deadline" None
      end
      else begin
        (* already running: answer now, discard the result later *)
        t.sr_deadline <- t.sr_deadline + 1;
        send_error t pd.pd_conn ~id:pd.pd_id ~code:Wire.Deadline_exceeded
          "deadline expired while the request was running";
        pd.pd_abandoned <- true;
        false
      end
  | Some outcome ->
      if pd.pd_abandoned then begin
        (* reply already sent (deadline) or client is gone *)
        if not pd.pd_conn.cn_open then t.sr_dropped <- t.sr_dropped + 1;
        finish ~status:"abandoned" None
      end
      else if expired pd t_now then begin
        t.sr_deadline <- t.sr_deadline + 1;
        send_error t pd.pd_conn ~id:pd.pd_id ~code:Wire.Deadline_exceeded
          "deadline expired before the result was ready";
        finish ~status:"deadline" None
      end
      else
        match outcome with
        | Ok (Ok artifact) ->
            Metrics.inc t.sr_metrics.m_completed;
            t.sr_completed <- t.sr_completed + 1;
            let artifact =
              (* ship the request's spans home iff the client asked (sent
                 a trace context) and the daemon tracer is recording *)
              if pd.pd_trace <> None && Trace.enabled Trace.default then
                { artifact with Wire.ar_spans = span_buffer pd ~t_now }
              else artifact
            in
            finish ~status:"ok" ~origin:artifact.Wire.ar_origin
              (Some (Wire.Result artifact))
        | Ok (Error diag) ->
            Metrics.inc t.sr_metrics.m_completed;
            t.sr_completed <- t.sr_completed + 1;
            finish ~status:"compile-error"
              (Some
                 (Wire.Err
                    {
                      er_id = pd.pd_id;
                      er_code = Wire.Compile_error;
                      er_retry_after_ms = 0;
                      er_msg = Diag.to_string diag;
                    }))
        | Error Pool.Cancelled ->
            (* cancelled by the deadline scan; already answered *)
            finish ~status:"cancelled" None
        | Error exn ->
            Metrics.inc t.sr_metrics.m_completed;
            t.sr_completed <- t.sr_completed + 1;
            finish ~status:"error"
              (Some
                 (Wire.Err
                    {
                      er_id = pd.pd_id;
                      er_code = Wire.Compile_error;
                      er_retry_after_ms = 0;
                      er_msg = Printexc.to_string exn;
                    }))

(* ------------------------------------------------------------------ *)
(* The reactor                                                         *)
(* ------------------------------------------------------------------ *)

let drain_pipe t =
  let buf = Bytes.create 64 in
  let continue = ref true in
  while !continue do
    match Unix.read t.sr_pipe_r buf 0 (Bytes.length buf) with
    | 0 -> continue := false
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let select_timeout t =
  let helping =
    Service.jobs t.sr_svc = 1 && Service.queue_depth t.sr_svc > 0
  in
  if helping then 0.0
  else if t.sr_active <> [] then 0.01
  else if t.sr_draining then 0.01
  else
    (* bound idle detection without busy-waiting *)
    min 0.25 (max 0.01 (t.sr_cfg.sc_idle_timeout_s /. 4.0))

let final_flush t =
  (* best-effort: give slow readers one second to take their replies *)
  let deadline = now () +. 1.0 in
  let pending () =
    List.filter
      (fun c -> c.cn_open && c.cn_off < String.length c.cn_out)
      t.sr_conns
  in
  let continue = ref true in
  while !continue do
    match pending () with
    | [] -> continue := false
    | cs ->
        if now () >= deadline then continue := false
        else begin
          (match
             Unix.select [] (List.map (fun c -> c.cn_fd) cs) [] 0.05
           with
          | _, ws, _ ->
              List.iter
                (fun c -> if List.mem c.cn_fd ws then flush_conn c)
                cs
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
        end
  done

let shutdown_sockets t =
  List.iter kill_conn t.sr_conns;
  List.iter kill_hconn t.sr_hconns;
  (match t.sr_http with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  (match t.sr_access with
  | Some oc -> ( try close_out oc with Sys_error _ -> ())
  | None -> ());
  (try Unix.close t.sr_listen with Unix.Unix_error _ -> ());
  (try Unix.close t.sr_pipe_r with Unix.Unix_error _ -> ());
  (try Unix.close t.sr_pipe_w with Unix.Unix_error _ -> ());
  (try Unix.unlink t.sr_cfg.sc_socket with Unix.Unix_error _ -> ())

let run t =
  if t.sr_ran then invalid_arg "Server.run: already ran";
  t.sr_ran <- true;
  let finished = ref false in
  while not !finished do
    t.sr_conns <- List.filter (fun c -> c.cn_open) t.sr_conns;
    t.sr_hconns <- List.filter (fun hc -> hc.hc_open) t.sr_hconns;
    let rds =
      t.sr_pipe_r
      :: (if t.sr_draining then [] else [ t.sr_listen ])
      (* the observability plane stays up while draining: that is when a
         load balancer most needs /healthz *)
      @ (match t.sr_http with Some fd -> [ fd ] | None -> [])
      @ List.map (fun c -> c.cn_fd) t.sr_conns
      @ List.filter_map
          (fun hc -> if hc.hc_out = "" then Some hc.hc_fd else None)
          t.sr_hconns
    in
    let wrs =
      List.filter_map
        (fun c ->
          if c.cn_off < String.length c.cn_out then Some c.cn_fd else None)
        t.sr_conns
      @ List.filter_map
          (fun hc ->
            if hc.hc_out <> "" && hc.hc_off < String.length hc.hc_out then
              Some hc.hc_fd
            else None)
          t.sr_hconns
    in
    let rready, wready =
      match Unix.select rds wrs [] (select_timeout t) with
      | r, w, _ -> (r, w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
    in
    if List.mem t.sr_pipe_r rready then drain_pipe t;
    if Atomic.get t.sr_drain_req then t.sr_draining <- true;
    if Atomic.get t.sr_flight_dump_req then begin
      Atomic.set t.sr_flight_dump_req false;
      dump_flight t
    end;
    List.iter
      (fun c -> if List.mem c.cn_fd wready then flush_conn c)
      t.sr_conns;
    List.iter
      (fun hc -> if List.mem hc.hc_fd wready then flush_hconn hc)
      t.sr_hconns;
    if (not t.sr_draining) && List.mem t.sr_listen rready then accept_loop t;
    (match t.sr_http with
    | Some fd when List.mem fd rready -> accept_http t
    | _ -> ());
    List.iter
      (fun c -> if c.cn_open && List.mem c.cn_fd rready then read_conn t c)
      t.sr_conns;
    List.iter
      (fun hc ->
        if hc.hc_open && List.mem hc.hc_fd rready then read_hconn t hc)
      t.sr_hconns;
    (* a ~jobs:1 service has no worker domains: the reactor runs one
       queued compile per turn so IO and deadline scans stay interleaved *)
    if Service.jobs t.sr_svc = 1 then
      ignore (Pool.run_one (Service.pool t.sr_svc));
    t.sr_active <- List.filter (fun pd -> not (reap_one t pd)) t.sr_active;
    (* connections that finished flushing after being marked closing *)
    List.iter
      (fun c ->
        if c.cn_closing && c.cn_off >= String.length c.cn_out then kill_conn c)
      t.sr_conns;
    (* idle-client timeout: no traffic, nothing in flight *)
    let t_now = now () in
    List.iter
      (fun c ->
        if
          c.cn_open && (not c.cn_closing)
          && t_now -. c.cn_last > t.sr_cfg.sc_idle_timeout_s
          && (not (List.exists (fun pd -> pd.pd_conn == c) t.sr_active))
          && c.cn_out = ""
        then kill_conn c)
      t.sr_conns;
    (* http peers get a short leash: one request, seconds to send it *)
    List.iter
      (fun hc ->
        if hc.hc_open && t_now -. hc.hc_last > 10.0 then kill_hconn hc)
      t.sr_hconns;
    Metrics.set t.sr_metrics.m_queue_depth
      (float_of_int (List.length t.sr_active));
    if t.sr_draining && t.sr_active = [] then begin
      (match t.sr_drain_done_at with
      | None ->
          List.iter
            (fun (c, id) ->
              send c
                (Wire.Drain_ack
                   {
                     da_id = id;
                     da_completed = t.sr_drain_completed;
                     da_dropped = t.sr_dropped;
                   }))
            t.sr_drain_acks;
          t.sr_drain_acks <- [];
          t.sr_drain_done_at <- Some (now ())
      | Some _ -> ());
      (* linger for the drain-grace window, serving the observability
         plane only, so /healthz observably flips to draining before the
         process exits *)
      let done_at = Option.value t.sr_drain_done_at ~default:t_now in
      if now () -. done_at >= t.sr_cfg.sc_drain_grace_s then begin
        (* the post-mortem a drained process leaves behind *)
        dump_flight t;
        final_flush t;
        shutdown_sockets t;
        if t.sr_owns_svc then Service.shutdown t.sr_svc;
        finished := true
      end
    end
  done
