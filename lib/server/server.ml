(** Unix-domain-socket compile daemon — see the interface. *)

module Service = Lime_service.Service
module Pool = Lime_service.Pool
module Metrics = Lime_service.Metrics
module Trace = Lime_service.Trace
module Digest = Lime_service.Digest
module Diag = Lime_support.Diag
module Memopt = Lime_gpu.Memopt
module Pipeline = Lime_gpu.Pipeline

type config = {
  sc_socket : string;
  sc_jobs : int;
  sc_max_inflight : int;
  sc_idle_timeout_s : float;
  sc_cache_dir : string option;
  sc_cache_capacity : int;
}

let default_config ~socket =
  {
    sc_socket = socket;
    sc_jobs = 1;
    sc_max_inflight = 64;
    sc_idle_timeout_s = 300.0;
    sc_cache_dir = None;
    sc_cache_capacity = 64;
  }

let configs =
  [
    ("global", Memopt.config_global);
    ("global+vec", Memopt.config_global_vector);
    ("local", Memopt.config_local);
    ("local+pad", Memopt.config_local_noconflict);
    ("local+pad+vec", Memopt.config_local_noconflict_vector);
    ("constant", Memopt.config_constant);
    ("constant+vec", Memopt.config_constant_vector);
    ("texture", Memopt.config_image);
    ("all", Memopt.config_all);
  ]

let config_of_name name = List.assoc_opt name configs

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

type conn = {
  cn_fd : Unix.file_descr;
  cn_reader : Wire.reader;
  mutable cn_out : string;  (** bytes queued for write *)
  mutable cn_off : int;  (** how much of [cn_out] is already written *)
  mutable cn_last : float;  (** last read activity *)
  mutable cn_greeted : bool;
  mutable cn_closing : bool;  (** flush what is queued, then close *)
  mutable cn_open : bool;
}

type pending = {
  pd_conn : conn;
  pd_id : int;
  pd_worker : string;
  pd_admitted : float;  (** wall clock at admission *)
  pd_admit_us : float;  (** trace timeline at admission *)
  pd_deadline : float option;  (** absolute wall clock *)
  pd_started : float Atomic.t;  (** set by the job when it begins; 0 = queued *)
  pd_future : (Wire.artifact, Diag.t) result Pool.future;
  mutable pd_abandoned : bool;
      (** the client was already answered (deadline) or is gone; discard
          the eventual result *)
}

type counters = {
  m_connections : Metrics.counter;
  m_requests : Metrics.counter;
  m_rejects : Metrics.counter;
  m_deadline : Metrics.counter;
  m_completed : Metrics.counter;
  m_protocol_errors : Metrics.counter;
  m_queue_depth : Metrics.gauge;
  m_request_seconds : Metrics.histogram;
  m_queue_wait_seconds : Metrics.histogram;
}

type report = {
  rp_requests : int;
  rp_rejected : int;
  rp_deadline : int;
  rp_completed : int;
  rp_dropped : int;
}

type t = {
  sr_cfg : config;
  sr_svc : Service.t;
  sr_owns_svc : bool;
  sr_listen : Unix.file_descr;
  sr_pipe_r : Unix.file_descr;  (** self-pipe: wakes select on completions *)
  sr_pipe_w : Unix.file_descr;
  sr_metrics : counters;
  sr_drain_req : bool Atomic.t;  (** set by {!drain} / signal handlers *)
  mutable sr_conns : conn list;
  mutable sr_active : pending list;
  mutable sr_draining : bool;
  mutable sr_drain_acks : (conn * int) list;  (** Drain frames to answer *)
  mutable sr_drain_completed : int;
  mutable sr_ewma_s : float;  (** smoothed request latency, for retry hints *)
  mutable sr_ran : bool;
  mutable sr_requests : int;
  mutable sr_rejected : int;
  mutable sr_deadline : int;
  mutable sr_completed : int;
  mutable sr_dropped : int;
}

let now () = Unix.gettimeofday ()

let register_metrics reg =
  {
    m_connections =
      Metrics.counter reg ~help:"client connections accepted"
        "lime_server_connections_total";
    m_requests =
      Metrics.counter reg ~help:"compile requests admitted"
        "lime_server_requests_total";
    m_rejects =
      Metrics.counter reg ~help:"compile requests shed with Overloaded"
        "lime_server_rejects_total";
    m_deadline =
      Metrics.counter reg ~help:"requests answered DeadlineExceeded"
        "lime_server_deadline_total";
    m_completed =
      Metrics.counter reg ~help:"requests answered (result or diagnostic)"
        "lime_server_completed_total";
    m_protocol_errors =
      Metrics.counter reg ~help:"malformed frames / protocol violations"
        "lime_server_protocol_errors_total";
    m_queue_depth =
      Metrics.gauge reg ~help:"requests queued or running right now"
        "lime_server_queue_depth";
    m_request_seconds =
      Metrics.histogram reg ~help:"admission-to-reply latency, seconds"
        "lime_server_request_seconds";
    m_queue_wait_seconds =
      Metrics.histogram reg ~help:"admission-to-start queue wait, seconds"
        "lime_server_queue_wait_seconds";
  }

let create ?service cfg =
  if cfg.sc_max_inflight < 1 then
    invalid_arg "Server.create: sc_max_inflight must be at least 1";
  if cfg.sc_idle_timeout_s <= 0.0 then
    invalid_arg "Server.create: sc_idle_timeout_s must be positive";
  let svc, owns =
    match service with
    | Some s -> (s, false)
    | None ->
        ( Service.create ?cache_dir:cfg.sc_cache_dir
            ~capacity:cfg.sc_cache_capacity ~jobs:cfg.sc_jobs (),
          true )
  in
  (* replace a stale socket file from a crashed predecessor *)
  (try Unix.unlink cfg.sc_socket with Unix.Unix_error _ -> ());
  let listen = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen (Unix.ADDR_UNIX cfg.sc_socket);
     Unix.listen listen 64;
     Unix.set_nonblock listen
   with e ->
     (try Unix.close listen with Unix.Unix_error _ -> ());
     raise e);
  let pipe_r, pipe_w = Unix.pipe () in
  Unix.set_nonblock pipe_r;
  Unix.set_nonblock pipe_w;
  {
    sr_cfg = cfg;
    sr_svc = svc;
    sr_owns_svc = owns;
    sr_listen = listen;
    sr_pipe_r = pipe_r;
    sr_pipe_w = pipe_w;
    sr_metrics = register_metrics (Service.registry svc);
    sr_drain_req = Atomic.make false;
    sr_conns = [];
    sr_active = [];
    sr_draining = false;
    sr_drain_acks = [];
    sr_drain_completed = 0;
    sr_ewma_s = 0.0;
    sr_ran = false;
    sr_requests = 0;
    sr_rejected = 0;
    sr_deadline = 0;
    sr_completed = 0;
    sr_dropped = 0;
  }

let service t = t.sr_svc
let socket_path t = t.sr_cfg.sc_socket

let wake t =
  try ignore (Unix.write_substring t.sr_pipe_w "w" 0 1)
  with Unix.Unix_error _ -> ()
  (* EAGAIN: the pipe already holds a wakeup *)

let drain t =
  Atomic.set t.sr_drain_req true;
  wake t

let report t =
  {
    rp_requests = t.sr_requests;
    rp_rejected = t.sr_rejected;
    rp_deadline = t.sr_deadline;
    rp_completed = t.sr_completed;
    rp_dropped = t.sr_dropped;
  }

(* ------------------------------------------------------------------ *)
(* Connection IO                                                       *)
(* ------------------------------------------------------------------ *)

let kill_conn c =
  if c.cn_open then begin
    c.cn_open <- false;
    try Unix.close c.cn_fd with Unix.Unix_error _ -> ()
  end

let flush_conn c =
  if c.cn_open then begin
    let continue = ref true in
    while !continue && c.cn_off < String.length c.cn_out do
      match
        Unix.write_substring c.cn_fd c.cn_out c.cn_off
          (String.length c.cn_out - c.cn_off)
      with
      | 0 -> continue := false
      | n -> c.cn_off <- c.cn_off + n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error _ -> kill_conn c; continue := false
    done;
    if c.cn_open && c.cn_off >= String.length c.cn_out then begin
      c.cn_out <- "";
      c.cn_off <- 0;
      if c.cn_closing then kill_conn c
    end
  end

let send c frame =
  if c.cn_open && not c.cn_closing then begin
    c.cn_out <- String.sub c.cn_out c.cn_off (String.length c.cn_out - c.cn_off)
                ^ Wire.encode frame;
    c.cn_off <- 0;
    flush_conn c
  end

let send_error t c ~id ~code ?(retry_after_ms = 0) msg =
  (match code with
  | Wire.Overloaded -> Metrics.inc t.sr_metrics.m_rejects
  | Wire.Deadline_exceeded -> Metrics.inc t.sr_metrics.m_deadline
  | Wire.Protocol_error -> Metrics.inc t.sr_metrics.m_protocol_errors
  | _ -> ());
  send c
    (Wire.Err
       { er_id = id; er_code = code; er_retry_after_ms = retry_after_ms; er_msg = msg })

(* ------------------------------------------------------------------ *)
(* Request lifecycle                                                   *)
(* ------------------------------------------------------------------ *)

let retry_after_ms t =
  let per_request = if t.sr_ewma_s > 0.0 then t.sr_ewma_s else 0.005 in
  let hint = per_request *. float_of_int (List.length t.sr_active + 1) *. 1e3 in
  max 1 (min 60_000 (int_of_float hint))

let expired pd t_now =
  match pd.pd_deadline with None -> false | Some d -> t_now >= d

(* Everything the reply needs is computed inside the pool job, so worker
   domains do the heavy lifting and the reactor only forwards bytes. *)
let admit t (c : conn) (r : Wire.compile_req) config =
  let svc = t.sr_svc in
  let t_now = now () in
  let pd_started = Atomic.make 0.0 in
  let job () =
    Atomic.set pd_started (now ());
    let res =
      match
        Diag.protect (fun () ->
            Service.compile_ex svc ~config ~name:r.Wire.cr_name
              ~worker:r.Wire.cr_worker r.Wire.cr_source)
      with
      | Error d -> Error d
      | Ok (c, origin) ->
          let digest =
            Service.request_digest ~config ~worker:r.Wire.cr_worker
              r.Wire.cr_source
          in
          let kernel = c.Pipeline.cp_kernel in
          Ok
            {
              Wire.ar_id = r.Wire.cr_id;
              ar_origin = Service.origin_name origin;
              ar_digest = Digest.to_hex digest;
              ar_kernel = kernel.Lime_gpu.Kernel.k_name;
              ar_parallel = kernel.Lime_gpu.Kernel.k_parallel;
              ar_opencl = c.Pipeline.cp_opencl;
              ar_placements = Memopt.describe c.Pipeline.cp_decisions;
            }
    in
    wake t;
    res
  in
  let pd =
    {
      pd_conn = c;
      pd_id = r.Wire.cr_id;
      pd_worker = r.Wire.cr_worker;
      pd_admitted = t_now;
      pd_admit_us = Trace.now_us Trace.default;
      pd_deadline =
        Option.map (fun ms -> t_now +. (float_of_int ms /. 1e3)) r.Wire.cr_deadline_ms;
      pd_started;
      pd_future = Pool.submit (Service.pool svc) job;
      pd_abandoned = false;
    }
  in
  Metrics.inc t.sr_metrics.m_requests;
  t.sr_requests <- t.sr_requests + 1;
  t.sr_active <- t.sr_active @ [ pd ]

let handle_frame t (c : conn) (frame : Wire.frame) =
  match frame with
  | Wire.Hello v ->
      if c.cn_greeted then begin
        send_error t c ~id:0 ~code:Wire.Protocol_error "duplicate hello";
        c.cn_closing <- true
      end
      else if v <> Wire.version then begin
        send_error t c ~id:0 ~code:Wire.Protocol_error
          (Printf.sprintf "unsupported protocol version %d (speaking %d)" v
             Wire.version);
        c.cn_closing <- true
      end
      else begin
        c.cn_greeted <- true;
        send c (Wire.Hello_ack Wire.version)
      end
  | _ when not c.cn_greeted ->
      send_error t c ~id:0 ~code:Wire.Protocol_error
        "first frame must be a hello";
      c.cn_closing <- true
  | Wire.Compile r ->
      if t.sr_draining then
        send_error t c ~id:r.Wire.cr_id ~code:Wire.Draining
          "server is draining"
      else begin
        match config_of_name r.Wire.cr_config with
        | None ->
            send_error t c ~id:r.Wire.cr_id ~code:Wire.Compile_error
              (Printf.sprintf "unknown config %s; available: %s"
                 r.Wire.cr_config
                 (String.concat ", " (List.map fst configs)))
        | Some config ->
            if List.length t.sr_active >= t.sr_cfg.sc_max_inflight then begin
              t.sr_rejected <- t.sr_rejected + 1;
              send_error t c ~id:r.Wire.cr_id ~code:Wire.Overloaded
                ~retry_after_ms:(retry_after_ms t)
                (Printf.sprintf "admission queue full (%d in flight)"
                   (List.length t.sr_active))
            end
            else admit t c r config
      end
  | Wire.Stats id ->
      Metrics.set t.sr_metrics.m_queue_depth
        (float_of_int (List.length t.sr_active));
      send c (Wire.Stats_reply (id, Service.expose t.sr_svc))
  | Wire.Drain id ->
      t.sr_draining <- true;
      t.sr_drain_acks <- t.sr_drain_acks @ [ (c, id) ]
  | Wire.Hello_ack _ | Wire.Result _ | Wire.Err _ | Wire.Stats_reply _
  | Wire.Drain_ack _ ->
      send_error t c ~id:0 ~code:Wire.Protocol_error
        "server-to-client frame on the request path";
      c.cn_closing <- true

let read_conn t (c : conn) =
  let buf = Bytes.create 65536 in
  let eof = ref false in
  (try
     let continue = ref true in
     while !continue do
       match Unix.read c.cn_fd buf 0 (Bytes.length buf) with
       | 0 ->
           eof := true;
           continue := false
       | n ->
           c.cn_last <- now ();
           Wire.feed c.cn_reader buf n;
           (* keep draining the fd until EAGAIN so one select round picks
              up everything a pipelining client sent *)
           if n < Bytes.length buf then continue := false
     done
   with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | Unix.Unix_error _ -> eof := true);
  (* parse every complete frame from this read before running any work:
     admission decisions depend only on arrival order *)
  let parsing = ref (c.cn_open && not c.cn_closing) in
  while !parsing do
    match Wire.next c.cn_reader with
    | Ok (Some frame) ->
        handle_frame t c frame;
        if c.cn_closing || not c.cn_open then parsing := false
    | Ok None -> parsing := false
    | Error e ->
        send_error t c ~id:0 ~code:Wire.Protocol_error (Wire.error_to_string e);
        c.cn_closing <- true;
        parsing := false
  done;
  if !eof then begin
    (* the peer is gone: discard any result still in flight for it *)
    List.iter
      (fun pd -> if pd.pd_conn == c then pd.pd_abandoned <- true)
      t.sr_active;
    kill_conn c
  end

let accept_loop t =
  let continue = ref true in
  while !continue do
    match Unix.accept ~cloexec:true t.sr_listen with
    | fd, _ ->
        Trace.with_span Trace.default ~cat:"server" "server.accept" (fun () ->
            Unix.set_nonblock fd;
            Metrics.inc t.sr_metrics.m_connections;
            t.sr_conns <-
              t.sr_conns
              @ [
                  {
                    cn_fd = fd;
                    cn_reader = Wire.reader ();
                    cn_out = "";
                    cn_off = 0;
                    cn_last = now ();
                    cn_greeted = false;
                    cn_closing = false;
                    cn_open = true;
                  };
                ])
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> continue := false
  done

(* Answer one settled (or expired) pending request.  Returns [true] when
   the entry is finished and should leave the active list. *)
let reap_one t pd =
  let t_now = now () in
  let finish ~status reply =
    let dur_s = t_now -. pd.pd_admitted in
    (match reply with
    | Some frame ->
        send pd.pd_conn frame;
        Metrics.observe t.sr_metrics.m_request_seconds dur_s;
        t.sr_ewma_s <-
          (if t.sr_ewma_s = 0.0 then dur_s
           else (0.8 *. t.sr_ewma_s) +. (0.2 *. dur_s))
    | None -> ());
    let started = Atomic.get pd.pd_started in
    let wait_s =
      if started > 0.0 then started -. pd.pd_admitted else dur_s
    in
    Metrics.observe t.sr_metrics.m_queue_wait_seconds wait_s;
    Trace.complete Trace.default ~cat:"server" ~ts_us:pd.pd_admit_us
      ~dur_us:(wait_s *. 1e6) "server.queue_wait";
    Trace.complete Trace.default ~cat:"server"
      ~args:[ ("worker", pd.pd_worker); ("status", status) ]
      ~ts_us:pd.pd_admit_us ~dur_us:(dur_s *. 1e6) "server.request";
    if t.sr_draining then t.sr_drain_completed <- t.sr_drain_completed + 1;
    true
  in
  match Pool.poll pd.pd_future with
  | None ->
      (* still queued or running; enforce the deadline *)
      if pd.pd_abandoned || not (expired pd t_now) then false
      else if Pool.cancel pd.pd_future then begin
        t.sr_deadline <- t.sr_deadline + 1;
        send_error t pd.pd_conn ~id:pd.pd_id ~code:Wire.Deadline_exceeded
          "deadline expired before the request started";
        finish ~status:"deadline" None
      end
      else begin
        (* already running: answer now, discard the result later *)
        t.sr_deadline <- t.sr_deadline + 1;
        send_error t pd.pd_conn ~id:pd.pd_id ~code:Wire.Deadline_exceeded
          "deadline expired while the request was running";
        pd.pd_abandoned <- true;
        false
      end
  | Some outcome ->
      if pd.pd_abandoned then begin
        (* reply already sent (deadline) or client is gone *)
        if not pd.pd_conn.cn_open then t.sr_dropped <- t.sr_dropped + 1;
        finish ~status:"abandoned" None
      end
      else if expired pd t_now then begin
        t.sr_deadline <- t.sr_deadline + 1;
        send_error t pd.pd_conn ~id:pd.pd_id ~code:Wire.Deadline_exceeded
          "deadline expired before the result was ready";
        finish ~status:"deadline" None
      end
      else
        match outcome with
        | Ok (Ok artifact) ->
            Metrics.inc t.sr_metrics.m_completed;
            t.sr_completed <- t.sr_completed + 1;
            finish ~status:"ok" (Some (Wire.Result artifact))
        | Ok (Error diag) ->
            Metrics.inc t.sr_metrics.m_completed;
            t.sr_completed <- t.sr_completed + 1;
            finish ~status:"compile-error"
              (Some
                 (Wire.Err
                    {
                      er_id = pd.pd_id;
                      er_code = Wire.Compile_error;
                      er_retry_after_ms = 0;
                      er_msg = Diag.to_string diag;
                    }))
        | Error Pool.Cancelled ->
            (* cancelled by the deadline scan; already answered *)
            finish ~status:"cancelled" None
        | Error exn ->
            Metrics.inc t.sr_metrics.m_completed;
            t.sr_completed <- t.sr_completed + 1;
            finish ~status:"error"
              (Some
                 (Wire.Err
                    {
                      er_id = pd.pd_id;
                      er_code = Wire.Compile_error;
                      er_retry_after_ms = 0;
                      er_msg = Printexc.to_string exn;
                    }))

(* ------------------------------------------------------------------ *)
(* The reactor                                                         *)
(* ------------------------------------------------------------------ *)

let drain_pipe t =
  let buf = Bytes.create 64 in
  let continue = ref true in
  while !continue do
    match Unix.read t.sr_pipe_r buf 0 (Bytes.length buf) with
    | 0 -> continue := false
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let select_timeout t =
  let helping =
    Service.jobs t.sr_svc = 1 && Service.queue_depth t.sr_svc > 0
  in
  if helping then 0.0
  else if t.sr_active <> [] then 0.01
  else if t.sr_draining then 0.01
  else
    (* bound idle detection without busy-waiting *)
    min 0.25 (max 0.01 (t.sr_cfg.sc_idle_timeout_s /. 4.0))

let final_flush t =
  (* best-effort: give slow readers one second to take their replies *)
  let deadline = now () +. 1.0 in
  let pending () =
    List.filter
      (fun c -> c.cn_open && c.cn_off < String.length c.cn_out)
      t.sr_conns
  in
  let continue = ref true in
  while !continue do
    match pending () with
    | [] -> continue := false
    | cs ->
        if now () >= deadline then continue := false
        else begin
          (match
             Unix.select [] (List.map (fun c -> c.cn_fd) cs) [] 0.05
           with
          | _, ws, _ ->
              List.iter
                (fun c -> if List.mem c.cn_fd ws then flush_conn c)
                cs
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
        end
  done

let shutdown_sockets t =
  List.iter kill_conn t.sr_conns;
  (try Unix.close t.sr_listen with Unix.Unix_error _ -> ());
  (try Unix.close t.sr_pipe_r with Unix.Unix_error _ -> ());
  (try Unix.close t.sr_pipe_w with Unix.Unix_error _ -> ());
  (try Unix.unlink t.sr_cfg.sc_socket with Unix.Unix_error _ -> ())

let run t =
  if t.sr_ran then invalid_arg "Server.run: already ran";
  t.sr_ran <- true;
  let finished = ref false in
  while not !finished do
    t.sr_conns <- List.filter (fun c -> c.cn_open) t.sr_conns;
    let rds =
      t.sr_pipe_r
      :: (if t.sr_draining then [] else [ t.sr_listen ])
      @ List.map (fun c -> c.cn_fd) t.sr_conns
    in
    let wrs =
      List.filter_map
        (fun c ->
          if c.cn_off < String.length c.cn_out then Some c.cn_fd else None)
        t.sr_conns
    in
    let rready, wready =
      match Unix.select rds wrs [] (select_timeout t) with
      | r, w, _ -> (r, w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
    in
    if List.mem t.sr_pipe_r rready then drain_pipe t;
    if Atomic.get t.sr_drain_req then t.sr_draining <- true;
    List.iter
      (fun c -> if List.mem c.cn_fd wready then flush_conn c)
      t.sr_conns;
    if (not t.sr_draining) && List.mem t.sr_listen rready then accept_loop t;
    List.iter
      (fun c -> if c.cn_open && List.mem c.cn_fd rready then read_conn t c)
      t.sr_conns;
    (* a ~jobs:1 service has no worker domains: the reactor runs one
       queued compile per turn so IO and deadline scans stay interleaved *)
    if Service.jobs t.sr_svc = 1 then
      ignore (Pool.run_one (Service.pool t.sr_svc));
    t.sr_active <- List.filter (fun pd -> not (reap_one t pd)) t.sr_active;
    (* connections that finished flushing after being marked closing *)
    List.iter
      (fun c ->
        if c.cn_closing && c.cn_off >= String.length c.cn_out then kill_conn c)
      t.sr_conns;
    (* idle-client timeout: no traffic, nothing in flight *)
    let t_now = now () in
    List.iter
      (fun c ->
        if
          c.cn_open && (not c.cn_closing)
          && t_now -. c.cn_last > t.sr_cfg.sc_idle_timeout_s
          && (not (List.exists (fun pd -> pd.pd_conn == c) t.sr_active))
          && c.cn_out = ""
        then kill_conn c)
      t.sr_conns;
    Metrics.set t.sr_metrics.m_queue_depth
      (float_of_int (List.length t.sr_active));
    if t.sr_draining && t.sr_active = [] then begin
      List.iter
        (fun (c, id) ->
          send c
            (Wire.Drain_ack
               {
                 da_id = id;
                 da_completed = t.sr_drain_completed;
                 da_dropped = t.sr_dropped;
               }))
        t.sr_drain_acks;
      t.sr_drain_acks <- [];
      final_flush t;
      shutdown_sockets t;
      if t.sr_owns_svc then Service.shutdown t.sr_svc;
      finished := true
    end
  done
