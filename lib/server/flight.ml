(** Tail-sampling flight recorder — see the interface. *)

module Trace = Lime_service.Trace

type entry = {
  fe_ts : float;
  fe_id : int;
  fe_worker : string;
  fe_name : string;
  fe_config : string;
  fe_digest : string;
  fe_trace_id : string;
  fe_deadline_ms : int option;
  fe_wait_s : float;
  fe_dur_s : float;
  fe_outcome : string;
  fe_origin : string;
  fe_spans : Trace.span list;
}

type t = {
  fl_capacity : int;
  fl_errors : entry Queue.t;  (* oldest at the front *)
  mutable fl_slow : entry list;  (* ascending by duration: head = fastest *)
  mutable fl_slow_len : int;
  mutable fl_evictions : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Flight.create: capacity must be at least 1";
  {
    fl_capacity = capacity;
    fl_errors = Queue.create ();
    fl_slow = [];
    fl_slow_len = 0;
    fl_evictions = 0;
  }

let capacity t = t.fl_capacity

let record_error t e =
  Queue.push e t.fl_errors;
  if Queue.length t.fl_errors > t.fl_capacity then begin
    ignore (Queue.pop t.fl_errors);
    t.fl_evictions <- t.fl_evictions + 1
  end

(* keep the list sorted ascending by duration so eviction is "drop the
   head"; ties keep the earlier entry closer to the head (evicted first) *)
let rec insert_slow e = function
  | [] -> [ e ]
  | x :: rest when e.fe_dur_s < x.fe_dur_s -> e :: x :: rest
  | x :: rest -> x :: insert_slow e rest

let record_slow t e =
  if t.fl_slow_len < t.fl_capacity then begin
    t.fl_slow <- insert_slow e t.fl_slow;
    t.fl_slow_len <- t.fl_slow_len + 1
  end
  else
    match t.fl_slow with
    | fastest :: rest when e.fe_dur_s > fastest.fe_dur_s ->
        t.fl_slow <- insert_slow e rest;
        t.fl_evictions <- t.fl_evictions + 1
    | _ -> ()

let would_retain_slow t e =
  t.fl_slow_len < t.fl_capacity
  || match t.fl_slow with
     | fastest :: _ -> e.fe_dur_s > fastest.fe_dur_s
     | [] -> true

let record t ?spans e =
  let retain_error = e.fe_outcome <> "ok" in
  let retain_slow = would_retain_slow t e in
  if retain_error || retain_slow then begin
    (* only now is the span tree worth building *)
    let e = match spans with None -> e | Some f -> { e with fe_spans = f () } in
    if retain_error then record_error t e;
    if retain_slow then record_slow t e
  end

let errors t =
  Queue.fold (fun acc e -> e :: acc) [] t.fl_errors (* newest first *)

let slowest t = List.rev t.fl_slow
let occupancy t = Queue.length t.fl_errors + t.fl_slow_len
let evictions t = t.fl_evictions

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let span_json sp =
  let e = Http.json_escape in
  let args =
    sp.Trace.sp_args
    |> List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (e k) (e v))
    |> String.concat ","
  in
  Printf.sprintf
    "{\"id\":%d,\"parent\":%d,\"name\":\"%s\",\"cat\":\"%s\",\
     \"begin_us\":%.3f,\"end_us\":%.3f,\"args\":{%s}}"
    sp.Trace.sp_id sp.Trace.sp_parent (e sp.Trace.sp_name)
    (e sp.Trace.sp_cat) sp.Trace.sp_begin_us sp.Trace.sp_end_us args

let entry_json en =
  let e = Http.json_escape in
  Printf.sprintf
    "{\"ts\":%.6f,\"id\":%d,\"name\":\"%s\",\"worker\":\"%s\",\
     \"config\":\"%s\",\"digest\":\"%s\",\"deadline_ms\":%s,\
     \"queue_wait_s\":%.6f,\"duration_s\":%.6f,\"outcome\":\"%s\",\
     \"origin\":\"%s\",\"trace_id\":\"%s\",\"spans\":[%s]}"
    en.fe_ts en.fe_id (e en.fe_name) (e en.fe_worker) (e en.fe_config)
    (e en.fe_digest)
    (match en.fe_deadline_ms with
    | None -> "null"
    | Some ms -> string_of_int ms)
    en.fe_wait_s en.fe_dur_s (e en.fe_outcome) (e en.fe_origin)
    (e en.fe_trace_id)
    (String.concat "," (List.map span_json en.fe_spans))

let dump t oc =
  let line ring en =
    (* the same object served over /debug, wrapped with its ring tag so a
       post-mortem reader can partition the file *)
    Printf.fprintf oc "{\"ring\":\"%s\",\"entry\":%s}\n" ring (entry_json en)
  in
  Queue.iter (line "errors") t.fl_errors;
  List.iter (line "slow") (slowest t);
  flush oc
