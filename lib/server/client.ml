(** Synchronous daemon client — see the interface. *)

type t = {
  cl_fd : Unix.file_descr;
  cl_reader : Wire.reader;
  cl_timeout : float;
  mutable cl_version : int;
  mutable cl_next_id : int;
  mutable cl_open : bool;
}

type failure = Server_error of Wire.server_error | Transport of string

let failure_to_string = function
  | Server_error e ->
      Printf.sprintf "%s%s%s"
        (Wire.error_code_name e.Wire.er_code)
        (if e.Wire.er_msg = "" then "" else ": " ^ e.Wire.er_msg)
        (if e.Wire.er_retry_after_ms > 0 then
           Printf.sprintf " (retry after %dms)" e.Wire.er_retry_after_ms
         else "")
  | Transport msg -> "transport: " ^ msg

let close t =
  if t.cl_open then begin
    t.cl_open <- false;
    try Unix.close t.cl_fd with Unix.Unix_error _ -> ()
  end

let fresh_id t =
  let id = t.cl_next_id in
  (* u32 on the wire *)
  t.cl_next_id <- (id + 1) land 0xFFFF_FFFF;
  id

let send_frame t frame =
  if not t.cl_open then Error "connection closed"
  else
    let bytes = Wire.encode frame in
    let rec go off =
      if off >= String.length bytes then Ok ()
      else
        match
          Unix.write_substring t.cl_fd bytes off (String.length bytes - off)
        with
        | n -> go (off + n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | exception Unix.Unix_error (e, _, _) ->
            Error (Unix.error_message e)
    in
    go 0

let recv_frame t =
  if not t.cl_open then Error "connection closed"
  else begin
    let buf = Bytes.create 65536 in
    let deadline = Unix.gettimeofday () +. t.cl_timeout in
    let rec go () =
      match Wire.next t.cl_reader with
      | Ok (Some frame) -> Ok frame
      | Error e -> Error (Wire.error_to_string e)
      | Ok None ->
          if Unix.gettimeofday () >= deadline then
            Error
              (Printf.sprintf "timed out after %.1fs waiting for a reply"
                 t.cl_timeout)
          else begin
            match Unix.read t.cl_fd buf 0 (Bytes.length buf) with
            | 0 -> Error "server closed the connection"
            | n ->
                Wire.feed t.cl_reader buf n;
                go ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
            | exception
                Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                (* SO_RCVTIMEO tripped; loop to re-check the deadline *)
                go ()
            | exception Unix.Unix_error (e, _, _) ->
                Error (Unix.error_message e)
          end
    in
    go ()
  end

let version t = t.cl_version

(* A pre-negotiation server answers any Hello above its own version with
   a Protocol_error naming the version it speaks; this is how a new
   client recognises an old daemon and falls back to speaking v1. *)
let string_contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let is_version_reject e =
  e.Wire.er_code = Wire.Protocol_error
  && string_contains e.Wire.er_msg "unsupported protocol version"

let rec connect_speaking ~timeout_s ~speak socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" socket
           (Unix.error_message e))
  | () -> (
      (* bound every read so a wedged daemon cannot hang the client; the
         receive loop still re-checks its own deadline on each wakeup *)
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO (min timeout_s 1.0)
       with Unix.Unix_error _ -> ());
      let t =
        {
          cl_fd = fd;
          cl_reader = Wire.reader ();
          cl_timeout = timeout_s;
          cl_version = speak;
          cl_next_id = 1;
          cl_open = true;
        }
      in
      let fail msg =
        close t;
        Error msg
      in
      match send_frame t (Wire.Hello speak) with
      | Error msg -> fail ("hello: " ^ msg)
      | Ok () -> (
          match recv_frame t with
          | Error msg -> fail ("hello: " ^ msg)
          | Ok (Wire.Hello_ack v) when v >= 1 && v <= speak ->
              t.cl_version <- v;
              Ok t
          | Ok (Wire.Hello_ack v) ->
              fail
                (Printf.sprintf "server speaks protocol version %d, not %d" v
                   speak)
          | Ok (Wire.Err e) when is_version_reject e && speak > 1 ->
              (* old daemon: redial speaking the lowest common version *)
              close t;
              connect_speaking ~timeout_s ~speak:1 socket
          | Ok (Wire.Err e) -> fail ("hello rejected: " ^ e.Wire.er_msg)
          | Ok _ -> fail "unexpected frame in hello handshake"))

let connect ?(timeout_s = 30.0) socket =
  connect_speaking ~timeout_s ~speak:Wire.version socket

(* Wait for the reply to request [id]; anything else on the wire at that
   point is a protocol violation. *)
let rec await_reply t id ~on_frame =
  match recv_frame t with
  | Error msg -> Error (Transport msg)
  | Ok (Wire.Err e) when e.Wire.er_id = id || e.Wire.er_id = 0 ->
      Error (Server_error e)
  | Ok frame -> (
      match on_frame frame with
      | Some r -> Ok r
      | None -> (
          match frame with
          | Wire.Err _ -> await_reply t id ~on_frame
          | _ ->
              Error
                (Transport "unexpected frame while waiting for a reply")))

let compile t ?deadline_ms ?(config = "all") ?(name = "<client>") ?trace
    ?placement ~worker source =
  let id = fresh_id t in
  (* a v1 peer cannot decode the traced Compile frame; silently send the
     plain one (the caller just gets no remote spans back).  Likewise a
     pre-v3 peer cannot decode the placement-provenance frame. *)
  let trace = if t.cl_version >= 2 then trace else None in
  let placement = if t.cl_version >= 3 then placement else None in
  let req =
    Wire.Compile
      {
        cr_id = id;
        cr_deadline_ms = deadline_ms;
        cr_name = name;
        cr_worker = worker;
        cr_config = config;
        cr_source = source;
        cr_trace = trace;
        cr_placement = placement;
      }
  in
  match send_frame t req with
  | Error msg -> Error (Transport msg)
  | Ok () ->
      await_reply t id ~on_frame:(function
        | Wire.Result a when a.Wire.ar_id = id -> Some a
        | _ -> None)

let stats t =
  let id = fresh_id t in
  match send_frame t (Wire.Stats id) with
  | Error msg -> Error (Transport msg)
  | Ok () ->
      await_reply t id ~on_frame:(function
        | Wire.Stats_reply (rid, text) when rid = id -> Some text
        | _ -> None)

let drain t =
  let id = fresh_id t in
  match send_frame t (Wire.Drain id) with
  | Error msg -> Error (Transport msg)
  | Ok () ->
      await_reply t id ~on_frame:(function
        | Wire.Drain_ack d when d.Wire.da_id = id -> Some d
        | _ -> None)
