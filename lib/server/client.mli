(** Synchronous client for the compile daemon.

    [connect] dials the daemon's Unix-domain socket and performs the
    versioned hello handshake; the request helpers then run one
    request/reply exchange at a time.  Every receive is bounded by the
    connection's timeout, so a wedged daemon surfaces as a [Transport]
    failure instead of a hang.

    The raw {!send_frame}/{!recv_frame} primitives are exposed for
    pipelining tests and tooling that needs to put several requests on
    the wire before reading any reply. *)

type t

type failure =
  | Server_error of Wire.server_error
      (** the daemon answered with an error frame (overloaded, deadline
          exceeded, compile diagnostic, …) *)
  | Transport of string
      (** socket/framing trouble: connect refused, short read, timeout,
          unexpected frame *)

val failure_to_string : failure -> string

val connect : ?timeout_s:float -> string -> (t, string) result
(** Dial [socket] and negotiate a protocol version: the client offers
    {!Wire.version}, a current daemon acks the highest version both
    sides speak, and a pre-negotiation daemon (which rejects unknown
    versions outright) is redialed once speaking version 1.  The
    negotiated version is {!version}; [timeout_s] (default 30) bounds
    every subsequent receive. *)

val close : t -> unit

val version : t -> int
(** The negotiated protocol version for this connection. *)

val compile :
  t ->
  ?deadline_ms:int ->
  ?config:string ->
  ?name:string ->
  ?trace:Wire.trace_ctx ->
  ?placement:string ->
  worker:string ->
  string ->
  (Wire.artifact, failure) result
(** Compile [source] on the daemon.  [config] is a configuration name
    (default ["all"]); [deadline_ms] asks the server to abandon the
    request if it cannot be answered in time.  [trace] propagates the
    caller's trace context: the daemon records its own spans under the
    given parent and returns them in [ar_spans] for the caller to
    {!Lime_service.Trace.graft} into one merged timeline.  [placement]
    reports the multi-device placement SPEC the artifact runs under;
    the daemon surfaces it in its access log.  Both are silently
    dropped when the negotiated version predates them (trace: v2,
    placement: v3). *)

val stats : t -> (string, failure) result
(** The daemon's metrics exposition ([lime_server_*] families included). *)

val drain : t -> (Wire.drain_ack, failure) result
(** Ask the daemon to drain: it finishes in-flight work, acks, and
    exits.  The ack arrives after every in-flight reply. *)

(** {1 Pipelining primitives} *)

val send_frame : t -> Wire.frame -> (unit, string) result
val recv_frame : t -> (Wire.frame, string) result
(** The next frame from the daemon, waiting at most the connection
    timeout. *)

val fresh_id : t -> int
(** The next request id (monotonic per connection). *)
