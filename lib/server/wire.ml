(** Length-prefixed binary frame codec — see the interface. *)

let version = 3
let max_frame = 16 * 1024 * 1024

(* u32 sentinel for "no deadline": a real deadline of ~49.7 days is not a
   deadline anyone means *)
let no_deadline = 0xFFFF_FFFF

(* u32 sentinel for "no parent span" in a propagated trace context *)
let no_parent_span = 0xFFFF_FFFF

type trace_ctx = { tc_trace_id : string; tc_parent_span : int }

type compile_req = {
  cr_id : int;
  cr_deadline_ms : int option;
  cr_name : string;
  cr_worker : string;
  cr_config : string;
  cr_source : string;
  cr_trace : trace_ctx option;
  cr_placement : string option;
      (** placement provenance: the [task=device,...] SPEC the client ran
          (or intends to run) this artifact under, surfaced in the
          daemon's access log *)
}

type artifact = {
  ar_id : int;
  ar_origin : string;
  ar_digest : string;
  ar_kernel : string;
  ar_parallel : bool;
  ar_opencl : string;
  ar_placements : string;
  ar_spans : string;
}

type error_code =
  | Overloaded
  | Deadline_exceeded
  | Compile_error
  | Protocol_error
  | Draining

let error_code_name = function
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline-exceeded"
  | Compile_error -> "compile-error"
  | Protocol_error -> "protocol-error"
  | Draining -> "draining"

let error_code_byte = function
  | Overloaded -> 1
  | Deadline_exceeded -> 2
  | Compile_error -> 3
  | Protocol_error -> 4
  | Draining -> 5

let error_code_of_byte = function
  | 1 -> Some Overloaded
  | 2 -> Some Deadline_exceeded
  | 3 -> Some Compile_error
  | 4 -> Some Protocol_error
  | 5 -> Some Draining
  | _ -> None

type server_error = {
  er_id : int;
  er_code : error_code;
  er_retry_after_ms : int;
  er_msg : string;
}

type drain_ack = { da_id : int; da_completed : int; da_dropped : int }

type frame =
  | Hello of int
  | Hello_ack of int
  | Compile of compile_req
  | Result of artifact
  | Err of server_error
  | Stats of int
  | Stats_reply of int * string
  | Drain of int
  | Drain_ack of drain_ack

type error = Oversized of int | Unknown_tag of int | Malformed of string

let error_to_string = function
  | Oversized n -> Printf.sprintf "declared frame length %d exceeds %d" n max_frame
  | Unknown_tag t -> Printf.sprintf "unknown frame tag %d" t
  | Malformed msg -> "malformed frame: " ^ msg

(* Version-2 frames reuse the version-1 layouts and append the new fields
   under fresh tags (10/11), chosen at encode time by field presence: a
   Compile with no trace context and a Result with no span buffer encode
   exactly as a version-1 peer would emit them.  That makes mixed-version
   conversations mechanical — a v2 endpoint talking to a v1 peer simply
   leaves the new fields empty.  Version 3 continues the discipline with
   tag 12: the version-1 layout, then a u8 trace-presence flag and the
   trace fields when present, then the placement-provenance string. *)
let tag_of = function
  | Hello _ -> 1
  | Hello_ack _ -> 2
  | Compile r -> (
      match r.cr_placement with
      | Some p when p <> "" -> 12
      | _ -> if r.cr_trace = None then 3 else 10)
  | Result a -> if a.ar_spans = "" then 4 else 11
  | Err _ -> 5
  | Stats _ -> 6
  | Stats_reply _ -> 7
  | Drain _ -> 8
  | Drain_ack _ -> 9

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u16 b v =
  put_u8 b (v lsr 8);
  put_u8 b v

let put_u32 b v =
  put_u8 b (v lsr 24);
  put_u8 b (v lsr 16);
  put_u8 b (v lsr 8);
  put_u8 b v

let put_string b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let encode frame =
  let b = Buffer.create 256 in
  put_u8 b (tag_of frame);
  (match frame with
  | Hello v | Hello_ack v -> put_u16 b v
  | Compile r ->
      let placed = tag_of (Compile r) = 12 in
      put_u32 b r.cr_id;
      put_u32 b (Option.value r.cr_deadline_ms ~default:no_deadline);
      put_string b r.cr_name;
      put_string b r.cr_worker;
      put_string b r.cr_config;
      put_string b r.cr_source;
      if placed then put_u8 b (if r.cr_trace = None then 0 else 1);
      (match r.cr_trace with
      | None -> ()
      | Some tc ->
          put_string b tc.tc_trace_id;
          put_u32 b
            (if tc.tc_parent_span < 0 then no_parent_span
             else tc.tc_parent_span land 0xFFFF_FFFF));
      if placed then put_string b (Option.value r.cr_placement ~default:"")
  | Result a ->
      put_u32 b a.ar_id;
      put_u8 b (if a.ar_parallel then 1 else 0);
      put_string b a.ar_origin;
      put_string b a.ar_digest;
      put_string b a.ar_kernel;
      put_string b a.ar_opencl;
      put_string b a.ar_placements;
      if a.ar_spans <> "" then put_string b a.ar_spans
  | Err e ->
      put_u32 b e.er_id;
      put_u8 b (error_code_byte e.er_code);
      put_u32 b e.er_retry_after_ms;
      put_string b e.er_msg
  | Stats id | Drain id -> put_u32 b id
  | Stats_reply (id, text) ->
      put_u32 b id;
      put_string b text
  | Drain_ack d ->
      put_u32 b d.da_id;
      put_u32 b d.da_completed;
      put_u32 b d.da_dropped);
  let payload = Buffer.contents b in
  let framed = Buffer.create (String.length payload + 4) in
  put_u32 framed (String.length payload);
  Buffer.add_string framed payload;
  Buffer.contents framed

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

exception Bad of string

type cursor = { cu_data : string; mutable cu_pos : int }

let need cu n what =
  if cu.cu_pos + n > String.length cu.cu_data then
    raise (Bad (Printf.sprintf "truncated %s (%d bytes short)" what
                  (cu.cu_pos + n - String.length cu.cu_data)))

let get_u8 cu what =
  need cu 1 what;
  let v = Char.code cu.cu_data.[cu.cu_pos] in
  cu.cu_pos <- cu.cu_pos + 1;
  v

let get_u16 cu what =
  let hi = get_u8 cu what in
  let lo = get_u8 cu what in
  (hi lsl 8) lor lo

let get_u32 cu what =
  let a = get_u8 cu what in
  let b = get_u8 cu what in
  let c = get_u8 cu what in
  let d = get_u8 cu what in
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let get_string cu what =
  let n = get_u32 cu (what ^ " length") in
  need cu n what;
  let s = String.sub cu.cu_data cu.cu_pos n in
  cu.cu_pos <- cu.cu_pos + n;
  s

let decode payload : (frame, error) result =
  let cu = { cu_data = payload; cu_pos = 0 } in
  match get_u8 cu "tag" with
  | exception Bad msg -> Error (Malformed msg)
  | tag -> (
      let frame () =
        match tag with
        | 1 -> Hello (get_u16 cu "hello version")
        | 2 -> Hello_ack (get_u16 cu "hello-ack version")
        | 3 | 10 | 12 ->
            let cr_id = get_u32 cu "compile id" in
            let dl = get_u32 cu "compile deadline" in
            let cr_deadline_ms = if dl = no_deadline then None else Some dl in
            let cr_name = get_string cu "compile name" in
            let cr_worker = get_string cu "compile worker" in
            let cr_config = get_string cu "compile config" in
            let cr_source = get_string cu "compile source" in
            let traced =
              match tag with
              | 3 -> false
              | 10 -> true
              | _ -> get_u8 cu "compile trace flag" <> 0
            in
            let cr_trace =
              if not traced then None
              else begin
                let tc_trace_id = get_string cu "compile trace id" in
                let p = get_u32 cu "compile parent span" in
                let tc_parent_span = if p = no_parent_span then -1 else p in
                Some { tc_trace_id; tc_parent_span }
              end
            in
            let cr_placement =
              if tag <> 12 then None
              else
                match get_string cu "compile placement" with
                | "" -> None
                | spec -> Some spec
            in
            Compile { cr_id; cr_deadline_ms; cr_name; cr_worker; cr_config;
                      cr_source; cr_trace; cr_placement }
        | 4 | 11 ->
            let ar_id = get_u32 cu "result id" in
            let ar_parallel = get_u8 cu "result parallel flag" <> 0 in
            let ar_origin = get_string cu "result origin" in
            let ar_digest = get_string cu "result digest" in
            let ar_kernel = get_string cu "result kernel" in
            let ar_opencl = get_string cu "result opencl" in
            let ar_placements = get_string cu "result placements" in
            let ar_spans =
              if tag = 4 then "" else get_string cu "result span buffer"
            in
            Result { ar_id; ar_origin; ar_digest; ar_kernel; ar_parallel;
                     ar_opencl; ar_placements; ar_spans }
        | 5 ->
            let er_id = get_u32 cu "error id" in
            let code = get_u8 cu "error code" in
            let er_code =
              match error_code_of_byte code with
              | Some c -> c
              | None -> raise (Bad (Printf.sprintf "bad error code %d" code))
            in
            let er_retry_after_ms = get_u32 cu "error retry-after" in
            let er_msg = get_string cu "error message" in
            Err { er_id; er_code; er_retry_after_ms; er_msg }
        | 6 -> Stats (get_u32 cu "stats id")
        | 7 ->
            let id = get_u32 cu "stats-reply id" in
            let text = get_string cu "stats-reply text" in
            Stats_reply (id, text)
        | 8 -> Drain (get_u32 cu "drain id")
        | 9 ->
            let da_id = get_u32 cu "drain-ack id" in
            let da_completed = get_u32 cu "drain-ack completed" in
            let da_dropped = get_u32 cu "drain-ack dropped" in
            Drain_ack { da_id; da_completed; da_dropped }
        | t -> raise (Bad (Printf.sprintf "tag %d" t))
      in
      if tag < 1 || tag > 12 then Error (Unknown_tag tag)
      else
        match frame () with
        | f ->
            if cu.cu_pos <> String.length payload then
              Error
                (Malformed
                   (Printf.sprintf "%d trailing bytes after frame"
                      (String.length payload - cu.cu_pos)))
            else Ok f
        | exception Bad msg -> Error (Malformed msg))

(* ------------------------------------------------------------------ *)
(* Incremental framing                                                 *)
(* ------------------------------------------------------------------ *)

type reader = { rd_acc : Buffer.t; mutable rd_pos : int }

let reader () = { rd_acc = Buffer.create 4096; rd_pos = 0 }

let feed r buf n = Buffer.add_subbytes r.rd_acc buf 0 n
let feed_string r s = Buffer.add_string r.rd_acc s
let buffered r = Buffer.length r.rd_acc - r.rd_pos

let compact r =
  if r.rd_pos > 0 && r.rd_pos = Buffer.length r.rd_acc then begin
    Buffer.clear r.rd_acc;
    r.rd_pos <- 0
  end

let next r : (frame option, error) result =
  if buffered r < 4 then Ok None
  else begin
    let byte i = Char.code (Buffer.nth r.rd_acc (r.rd_pos + i)) in
    let len = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
    if len > max_frame then Error (Oversized len)
    else if buffered r < 4 + len then Ok None
    else begin
      let payload = Buffer.sub r.rd_acc (r.rd_pos + 4) len in
      r.rd_pos <- r.rd_pos + 4 + len;
      compact r;
      match decode payload with
      | Ok f -> Ok (Some f)
      | Error e -> Error e
    end
  end
