(** Tail-sampling flight recorder for the daemon.

    Sampling on the head of the distribution (ship spans only when the
    client asked) answers "what does a typical request look like", but
    the questions that page people are about the tail: {e which} request
    blew the p99, {e why} did that one error.  The flight recorder keeps
    two bounded rings over finished requests — every errored request
    (FIFO, oldest evicted) and the rolling K slowest (fastest evicted) —
    each entry retaining the complete grafted span tree, the wire
    metadata, and the access-log fields, so the answer is served from
    memory at [/debug/errors] and [/debug/slow] without reproducing the
    request.

    On SIGQUIT and on graceful drain the daemon appends every retained
    entry to a JSONL post-mortem file ([--flight-dump]), one entry per
    line, loadable after the process is gone.

    The recorder is owned by the reactor thread: no internal locking. *)

type entry = {
  fe_ts : float;  (** wall clock when the request finished *)
  fe_id : int;
  fe_worker : string;
  fe_name : string;
  fe_config : string;
  fe_digest : string;
  fe_trace_id : string;  (** propagated trace id; [""] when untraced *)
  fe_deadline_ms : int option;
  fe_wait_s : float;  (** admission-to-start queue wait *)
  fe_dur_s : float;  (** admission-to-reply latency *)
  fe_outcome : string;  (** access-log outcome: ok, compile-error, ... *)
  fe_origin : string;  (** cache tier that served it; [""] otherwise *)
  fe_spans : Lime_service.Trace.span list;
      (** the grafted tree: synthetic [server.request] root, queue-wait
          child, and every span the job recorded, rebased to admission *)
}

type t

val create : capacity:int -> t
(** [capacity] bounds {e each} ring (errors and slowest) — it must be at
    least 1 ([Invalid_argument] otherwise). *)

val capacity : t -> int

val record : t -> ?spans:(unit -> Lime_service.Trace.span list) -> entry -> unit
(** File a finished request: into the errors ring when [fe_outcome] is
    not ["ok"], and into the slowest ring when it is among the K slowest
    seen so far.  [spans] is forced only when the entry is actually
    retained (replacing [fe_spans]) — so on the steady-state fast path a
    request that neither errored nor ranks in the tail never pays for
    building its span tree. *)

val errors : t -> entry list
(** Retained errored requests, most recent first. *)

val slowest : t -> entry list
(** Retained slowest requests, slowest first. *)

val occupancy : t -> int
(** Entries currently retained across both rings. *)

val evictions : t -> int
(** Entries pushed out of either ring since creation. *)

val entry_json : entry -> string
(** One entry as a self-contained JSON object (spans included). *)

val dump : t -> out_channel -> unit
(** Append every retained entry as JSONL: errors (oldest first), then
    slowest (slowest first), each line tagged with its ring. *)
