(** The compile daemon's frame codec.

    Every message on the socket is one length-prefixed binary frame:

    {v
      +----------------+---------------------------------+
      | u32 BE length  | payload (length bytes)          |
      +----------------+---------------------------------+
      payload = u8 tag, then tag-specific fields:
        u8/u16/u32   big-endian unsigned integers
        string       u32 BE byte count, then the bytes (no terminator)
    v}

    The codec is hand-written (no dependencies beyond the stdlib), total —
    {!decode} never raises, every malformed input maps to an {!error} —
    and bounded: a declared payload length above {!max_frame} is rejected
    {e before} any allocation, so a hostile length prefix cannot take the
    server down.

    {!reader} is the incremental side: feed it whatever [read] returned
    and pull complete frames out; partial frames simply wait for more
    bytes. *)

val version : int
(** Highest protocol version spoken by this build; exchanged in
    [Hello]/[Hello_ack].  Version 2 added the distributed-tracing fields:
    a Compile frame may carry a {!trace_ctx} (tag 10) and a Result frame
    may carry the server's serialized span buffer (tag 11).  Both encode
    as their version-1 layouts (tags 3/4) when the new fields are absent,
    so a v2 endpoint negotiated down to v1 emits byte-identical v1
    traffic.  Version 3 adds placement provenance: a Compile frame may
    carry the multi-device placement SPEC the client runs the artifact
    under (tag 12: the v1 layout, a trace-presence flag plus the trace
    fields, then the SPEC), surfaced in the daemon's access log. *)

val max_frame : int
(** Upper bound on a payload's declared length (16 MiB). *)

type trace_ctx = {
  tc_trace_id : string;
      (** 128-bit distributed trace id as 32 lowercase hex characters
          ({!Lime_service.Trace.valid_trace_id}) *)
  tc_parent_span : int;
      (** span id of the client-side parent span; [-1] for none (wire
          sentinel [0xFFFF_FFFF]) *)
}

type compile_req = {
  cr_id : int;  (** request id, echoed on the reply (u32) *)
  cr_deadline_ms : int option;
      (** per-request deadline, milliseconds from admission; [None] = no
          deadline.  A deadline of [0] can never be met (dispatch happens
          strictly after admission) and is the deterministic way to
          exercise the [Deadline_exceeded] path. *)
  cr_name : string;  (** source name, for diagnostics *)
  cr_worker : string;
  cr_config : string;  (** configuration name, e.g. ["all"] *)
  cr_source : string;
  cr_trace : trace_ctx option;
      (** propagated trace context; [Some _] encodes as tag 10 (v2) *)
  cr_placement : string option;
      (** placement provenance: the [task=device,...] SPEC
          ({!Lime_sched.Placement.to_spec}) the client runs the artifact
          under; [Some _] (non-empty) encodes as tag 12 (v3) *)
}

type artifact = {
  ar_id : int;
  ar_origin : string;  (** cache provenance: [memory]/[disk]/[compiled] *)
  ar_digest : string;  (** content-addressed request digest, hex *)
  ar_kernel : string;  (** kernel name *)
  ar_parallel : bool;
  ar_opencl : string;  (** the compiled OpenCL, byte-identical to local *)
  ar_placements : string;  (** [Memopt.describe] of the decisions *)
  ar_spans : string;
      (** the server's span buffer for this request
          ({!Lime_service.Trace.spans_to_wire}, timestamps relative to
          admission); [""] = none, non-empty encodes as tag 11 (v2) *)
}

type error_code =
  | Overloaded  (** admission queue full; retry after the hint *)
  | Deadline_exceeded
  | Compile_error  (** the rendered compiler diagnostic is in [er_msg] *)
  | Protocol_error
  | Draining  (** server is shutting down and accepts no new work *)

val error_code_name : error_code -> string

type server_error = {
  er_id : int;  (** id of the request this answers; 0 if none *)
  er_code : error_code;
  er_retry_after_ms : int;  (** only meaningful for [Overloaded] *)
  er_msg : string;
}

type drain_ack = {
  da_id : int;
  da_completed : int;  (** requests finished while draining *)
  da_dropped : int;  (** in-flight requests dropped (0 on a clean drain) *)
}

type frame =
  | Hello of int  (** client's first frame: protocol version *)
  | Hello_ack of int
  | Compile of compile_req
  | Result of artifact
  | Err of server_error
  | Stats of int  (** request the metrics exposition *)
  | Stats_reply of int * string
  | Drain of int  (** stop accepting, finish in-flight, ack, exit *)
  | Drain_ack of drain_ack

type error =
  | Oversized of int  (** declared payload length (beyond {!max_frame}) *)
  | Unknown_tag of int
  | Malformed of string  (** truncated field, trailing bytes, bad code *)

val error_to_string : error -> string

val encode : frame -> string
(** The full frame: length prefix plus payload. *)

val decode : string -> (frame, error) result
(** Decode one payload (the bytes {e after} the length prefix). *)

(** {1 Incremental framing} *)

type reader

val reader : unit -> reader

val feed : reader -> bytes -> int -> unit
(** [feed r buf n] appends the first [n] bytes of [buf]. *)

val feed_string : reader -> string -> unit

val next : reader -> (frame option, error) result
(** The next complete frame, [Ok None] while more bytes are needed.
    After [Error _] the stream is out of sync and the connection should
    be dropped. *)

val buffered : reader -> int
(** Bytes fed but not yet consumed by {!next}. *)
