(** Simulated per-launch hardware counters — see the interface.  The
    record is built by {!Model.kernel_time_ex} in the same pass that
    computes the timing breakdown; this module only derives, classifies,
    aggregates and renders. *)

type roofline = Compute_bound | Memory_bound | Latency_bound

type t = {
  ct_device : string;
  ct_peak_bw : float;
  ct_peak_flops : float;
  ct_items : float;
  ct_work_groups : float;
  ct_warps : float;
  ct_occupancy : float;
  ct_flops : float;
  ct_issue_cycles : float;
  ct_access_slots : float;
  ct_reduce_elems : float;
  ct_gtx_total : float;
  ct_gtx_coalesced : float;
  ct_gtx_uncoalesced : float;
  ct_bytes_global : float;
  ct_gslot_cycles : float;
  ct_lat_tx : float;
  ct_cache_hits : float;
  ct_cache_misses : float;
  ct_local_accesses : float;
  ct_bank_replays : float;
  ct_bytes_local : float;
  ct_const_broadcast : float;
  ct_const_serialized : float;
  ct_bytes_constant : float;
  ct_tex_fetches : float;
  ct_tex_hits : float;
  ct_tex_misses : float;
  ct_bytes_image : float;
  ct_compute_s : float;
  ct_global_s : float;
  ct_local_s : float;
  ct_constant_s : float;
  ct_image_s : float;
  ct_latency_s : float;
  ct_launch_s : float;
  ct_reduce_s : float;
  ct_total_s : float;
}

(* ------------------------------------------------------------------ *)
(* Derived quantities                                                  *)
(* ------------------------------------------------------------------ *)

let mem_s c = c.ct_global_s +. c.ct_local_s +. c.ct_constant_s +. c.ct_image_s

let achieved_bw c =
  if c.ct_total_s <= 0.0 then 0.0 else c.ct_bytes_global /. c.ct_total_s

let achieved_flops c =
  if c.ct_total_s <= 0.0 then 0.0 else c.ct_flops /. c.ct_total_s

let arithmetic_intensity c =
  if c.ct_bytes_global <= 0.0 then Float.infinity
  else c.ct_flops /. c.ct_bytes_global

(* The model's total is [max(compute, mem) + latency + launch + reduce]:
   when the additive overhead terms outweigh the overlapped throughput
   term the launch is latency-bound; otherwise the winner of the max
   names the bound. *)
let classify c =
  let overhead = c.ct_latency_s +. c.ct_launch_s +. c.ct_reduce_s in
  let throughput = Float.max c.ct_compute_s (mem_s c) in
  if overhead > throughput then Latency_bound
  else if c.ct_compute_s >= mem_s c then Compute_bound
  else Memory_bound

let limiter c =
  let contributors =
    [
      ("compute", c.ct_compute_s);
      ("global-memory", c.ct_global_s);
      ("local-memory", c.ct_local_s);
      ("constant-memory", c.ct_constant_s);
      ("image", c.ct_image_s);
      ("latency", c.ct_latency_s);
      ("launch-overhead", c.ct_launch_s +. c.ct_reduce_s);
    ]
  in
  fst
    (List.fold_left
       (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
       ("compute", neg_infinity) contributors)

let roofline_name = function
  | Compute_bound -> "compute-bound"
  | Memory_bound -> "memory-bound"
  | Latency_bound -> "latency-bound"

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

let add a b =
  let warps = a.ct_warps +. b.ct_warps in
  {
    ct_device = (if a.ct_device = b.ct_device then a.ct_device else "<mixed>");
    ct_peak_bw = a.ct_peak_bw;
    ct_peak_flops = a.ct_peak_flops;
    ct_items = a.ct_items +. b.ct_items;
    ct_work_groups = a.ct_work_groups +. b.ct_work_groups;
    ct_warps = warps;
    ct_occupancy =
      (if warps <= 0.0 then a.ct_occupancy
       else
         ((a.ct_occupancy *. a.ct_warps) +. (b.ct_occupancy *. b.ct_warps))
         /. warps);
    ct_flops = a.ct_flops +. b.ct_flops;
    ct_issue_cycles = a.ct_issue_cycles +. b.ct_issue_cycles;
    ct_access_slots = a.ct_access_slots +. b.ct_access_slots;
    ct_reduce_elems = a.ct_reduce_elems +. b.ct_reduce_elems;
    ct_gtx_total = a.ct_gtx_total +. b.ct_gtx_total;
    ct_gtx_coalesced = a.ct_gtx_coalesced +. b.ct_gtx_coalesced;
    ct_gtx_uncoalesced = a.ct_gtx_uncoalesced +. b.ct_gtx_uncoalesced;
    ct_bytes_global = a.ct_bytes_global +. b.ct_bytes_global;
    ct_gslot_cycles = a.ct_gslot_cycles +. b.ct_gslot_cycles;
    ct_lat_tx = a.ct_lat_tx +. b.ct_lat_tx;
    ct_cache_hits = a.ct_cache_hits +. b.ct_cache_hits;
    ct_cache_misses = a.ct_cache_misses +. b.ct_cache_misses;
    ct_local_accesses = a.ct_local_accesses +. b.ct_local_accesses;
    ct_bank_replays = a.ct_bank_replays +. b.ct_bank_replays;
    ct_bytes_local = a.ct_bytes_local +. b.ct_bytes_local;
    ct_const_broadcast = a.ct_const_broadcast +. b.ct_const_broadcast;
    ct_const_serialized = a.ct_const_serialized +. b.ct_const_serialized;
    ct_bytes_constant = a.ct_bytes_constant +. b.ct_bytes_constant;
    ct_tex_fetches = a.ct_tex_fetches +. b.ct_tex_fetches;
    ct_tex_hits = a.ct_tex_hits +. b.ct_tex_hits;
    ct_tex_misses = a.ct_tex_misses +. b.ct_tex_misses;
    ct_bytes_image = a.ct_bytes_image +. b.ct_bytes_image;
    ct_compute_s = a.ct_compute_s +. b.ct_compute_s;
    ct_global_s = a.ct_global_s +. b.ct_global_s;
    ct_local_s = a.ct_local_s +. b.ct_local_s;
    ct_constant_s = a.ct_constant_s +. b.ct_constant_s;
    ct_image_s = a.ct_image_s +. b.ct_image_s;
    ct_latency_s = a.ct_latency_s +. b.ct_latency_s;
    ct_launch_s = a.ct_launch_s +. b.ct_launch_s;
    ct_reduce_s = a.ct_reduce_s +. b.ct_reduce_s;
    ct_total_s = a.ct_total_s +. b.ct_total_s;
  }

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let pct part whole = if whole <= 0.0 then 0.0 else 100.0 *. part /. whole

let report (c : t) : string =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let row name v = line "  %-26s %14.6g" name v in
  line "hardware counters — %s" c.ct_device;
  row "work items" c.ct_items;
  row "work groups" c.ct_work_groups;
  row "warps launched" c.ct_warps;
  line "  %-26s %14.2f" "occupancy" c.ct_occupancy;
  line "  global memory:";
  line "    %-24s %14.6g  (coalesced %.6g, uncoalesced %.6g)"
    "transactions" c.ct_gtx_total c.ct_gtx_coalesced c.ct_gtx_uncoalesced;
  line "    %-24s %14s" "bytes moved"
    (Lime_support.Util.bytes_to_string
       (int_of_float (Float.round c.ct_bytes_global)));
  line "    %-24s %14.6g  (%.6g misses)" "cache hits" c.ct_cache_hits
    c.ct_cache_misses;
  line "    %-24s %14.6g" "latency-exposed tx" c.ct_lat_tx;
  line "  local memory:";
  line "    %-24s %14.6g" "accesses" c.ct_local_accesses;
  line "    %-24s %14.6g" "bank-conflict replays" c.ct_bank_replays;
  line "  constant memory:";
  line "    %-24s %14.6g  (%.6g serialized)" "broadcast reads"
    c.ct_const_broadcast c.ct_const_serialized;
  line "  image:";
  line "    %-24s %14.6g  (%.6g hits, %.6g misses)" "texture fetches"
    c.ct_tex_fetches c.ct_tex_hits c.ct_tex_misses;
  line "  time attribution (s):";
  let t name v = line "    %-24s %14.4g  %5.1f%%" name v (pct v c.ct_total_s) in
  t "compute" c.ct_compute_s;
  t "global" c.ct_global_s;
  t "local" c.ct_local_s;
  t "constant" c.ct_constant_s;
  t "image" c.ct_image_s;
  t "latency" c.ct_latency_s;
  t "launch+reduce" (c.ct_launch_s +. c.ct_reduce_s);
  line "roofline: %s (limited by %s)"
    (roofline_name (classify c))
    (limiter c);
  line "  %-26s %14.4g flop/byte" "arithmetic intensity"
    (arithmetic_intensity c);
  line "  %-26s %9.4g GB/s of %.4g peak  (%.1f%%)" "achieved bandwidth"
    (achieved_bw c /. 1e9) (c.ct_peak_bw /. 1e9)
    (pct (achieved_bw c) c.ct_peak_bw);
  line "  %-26s %9.4g GFLOP/s of %.4g peak  (%.1f%%)" "achieved compute"
    (achieved_flops c /. 1e9)
    (c.ct_peak_flops /. 1e9)
    (pct (achieved_flops c) c.ct_peak_flops);
  Buffer.contents b

let span_attrs (c : t) : (string * string) list =
  let f v = Printf.sprintf "%.6g" v in
  [
    ("gtx_total", f c.ct_gtx_total);
    ("gtx_coalesced", f c.ct_gtx_coalesced);
    ("gtx_uncoalesced", f c.ct_gtx_uncoalesced);
    ("bytes_global", f c.ct_bytes_global);
    ("cache_hits", f c.ct_cache_hits);
    ("cache_misses", f c.ct_cache_misses);
    ("bank_replays", f c.ct_bank_replays);
    ("const_serialized", f c.ct_const_serialized);
    ("tex_fetches", f c.ct_tex_fetches);
    ("warps", f c.ct_warps);
    ("occupancy", Printf.sprintf "%.2f" c.ct_occupancy);
    ("intensity_flop_per_byte", f (arithmetic_intensity c));
    ("achieved_bw_gbs", f (achieved_bw c /. 1e9));
    ("achieved_gflops", f (achieved_flops c /. 1e9));
    ("roofline", roofline_name (classify c));
    ("limiter", limiter c);
  ]
