(** Device timing model: converts a kernel {!Profile.t} plus memory
    placements into an execution-time estimate for a {!Device.t}.

    The model is throughput-based with latency-style penalties for the
    memory-system effects the paper's optimizations target:

    - {b compute}: total issue slots over all lanes, with double-precision
      work scaled by the device's fp64 ratio and transcendentals priced at
      the SFU/native cost;
    - {b global memory}: bytes moved / bandwidth, where the bytes depend on
      coalescing (access pattern), vector width, and — on Fermi — the L1/L2
      hit rate for data re-read across threads;
    - {b constant memory}: broadcast accesses cost a cached read; accesses
      that diverge across the warp serialize;
    - {b local memory}: per-access cost times the bank-conflict degree
      (gcd of row stride and bank count), plus the staging traffic through
      global memory;
    - {b image}: texture-cache model, intrinsically vectorized texels;
    - {b private}: register cost only.

    The kernel time is [max(compute, memory) + launch overhead] — the
    standard roofline assumption that a well-occupied GPU overlaps the two.

    Absolute numbers are estimates; what the test-suite and EXPERIMENTS.md
    check is the *shape*: which placement wins on which device, by roughly
    which factor (Fig 7/8/9). *)

module Ir = Lime_ir.Ir

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

type breakdown = {
  bd_compute_s : float;
  bd_global_s : float;
  bd_local_s : float;
  bd_constant_s : float;
  bd_image_s : float;
  bd_launch_s : float;
  bd_total_s : float;
}

let pp_breakdown ppf b =
  Fmt.pf ppf
    "total=%.3gs (compute=%.3g global=%.3g local=%.3g const=%.3g image=%.3g \
     launch=%.3g)"
    b.bd_total_s b.bd_compute_s b.bd_global_s b.bd_local_s b.bd_constant_s
    b.bd_image_s b.bd_launch_s

(** Information about an array argument needed by the memory model. *)
type array_binding = {
  ab_name : string;
  ab_elem_bytes : int;
  ab_total_bytes : int;  (** full array size *)
  ab_row_len : int;  (** innermost dimension length (1 if rank 1) *)
  ab_placement : Ir.placement;
}

let group_size = 256

(** One pass computes both the timing breakdown and the simulated hardware
    counters, so the two cannot disagree: every second the breakdown
    charges is the product of a count accumulated here and a device cost
    parameter (the consistency the counter tests reconstruct). *)
let kernel_time_ex (d : Device.t) (p : Profile.t)
    (arrays : array_binding list) : breakdown * Counters.t =
  let clock = d.Device.clock_ghz *. 1e9 in
  let lanes = float_of_int (d.Device.sms * d.Device.fp32_lanes) in
  let cpu_threads =
    match d.Device.kind with
    | Device.Cpu -> float_of_int (d.Device.sms * d.Device.threads_per_core)
    | Device.Gpu -> 1.0
  in
  (* ---- compute ---- *)
  let df = Profile.double_frac p in
  let fp64_scale = 1.0 +. (df *. ((1.0 /. d.Device.fp64_ratio) -. 1.0)) in
  let issue_slots =
    ((p.Profile.p_alu *. d.Device.alu_cost)
    +. (p.Profile.p_div *. d.Device.div_cost)
    +. (p.Profile.p_sqrt *. d.Device.sqrt_cost)
    +. (p.Profile.p_trans *. d.Device.trans_cost)
    +. (p.Profile.p_private_accesses *. 1.0))
    *. fp64_scale
  in
  (* total non-private access slots, used by the CPU path *)
  let access_slots =
    List.fold_left (fun acc a -> acc +. a.Profile.ac_count) 0.0
      p.Profile.p_accesses
  in
  let compute_s =
    match d.Device.kind with
    | Device.Gpu -> issue_slots /. (lanes *. clock)
    | Device.Cpu ->
        (* CPU OpenCL: compiled scalar-ish code (auto-vectorization rarely
           fires on these kernels), parallel over cores at ~85% efficiency
           with a modest hyperthreading bonus.  Memory accesses are cached
           loads costing about one issue slot. *)
        let par_eff = 0.85 in
        let ht =
          1.0
          +. ((cpu_threads /. float_of_int d.Device.sms -. 1.0) *. 0.06)
        in
        (issue_slots +. (access_slots *. 1.2))
        /. (float_of_int d.Device.sms *. par_eff *. ht *. clock)
  in
  (* ---- memory ---- *)
  let binding name =
    List.find_opt (fun a -> a.ab_name = name) arrays
  in
  let global_s = ref 0.0
  and local_s = ref 0.0
  and constant_s = ref 0.0
  and image_s = ref 0.0 in
  let global_bytes = ref 0.0 in
  (* hardware-counter accumulators, charged next to each cost below *)
  let gtx_coalesced = ref 0.0
  and gtx_uncoalesced = ref 0.0
  and gslot_cycles = ref 0.0
  and lat_tx = ref 0.0
  and cache_hits = ref 0.0
  and cache_misses = ref 0.0
  and local_accesses = ref 0.0
  and bank_replays = ref 0.0
  and bytes_local = ref 0.0
  and const_broadcast = ref 0.0
  and const_serialized = ref 0.0
  and bytes_constant = ref 0.0
  and tex_fetches = ref 0.0
  and tex_hits = ref 0.0
  and tex_misses = ref 0.0
  and bytes_image = ref 0.0 in
  let warp_f = float_of_int d.Device.warp in
  let bw = d.Device.global_bw_gbs *. 1e9 in
  (* exposed memory latency: each transaction stalls its warp for the full
     global latency; an SM hides up to [inflight_warps] such stalls
     concurrently.  This is what makes un-cached global access on the
     GTX8800 so much slower than constant/local/texture (Fig 8a). *)
  let lat_s = ref 0.0 in
  let latency_seconds transactions =
    transactions *. d.Device.global_lat_cycles
    /. (float_of_int (d.Device.sms * d.Device.inflight_warps) *. clock)
  in
  if d.Device.kind = Device.Cpu then
    (* all spaces are cached RAM on a CPU: only cache misses hit the bus *)
    List.iter
      (fun (a : Profile.access) ->
        match binding a.Profile.ac_root with
        | None -> ()
        | Some ab ->
            let miss = 1.0 -. d.Device.cache_hit_shared in
            let bytes =
              a.Profile.ac_count *. float_of_int ab.ab_elem_bytes *. miss
            in
            global_bytes := !global_bytes +. bytes;
            (* counters: misses fill 64B cache lines over the bus *)
            cache_hits :=
              !cache_hits +. (a.Profile.ac_count *. d.Device.cache_hit_shared);
            cache_misses := !cache_misses +. (a.Profile.ac_count *. miss);
            gtx_coalesced := !gtx_coalesced +. (bytes /. 64.0))
      p.Profile.p_accesses
  else
  List.iter
    (fun (a : Profile.access) ->
      match binding a.Profile.ac_root with
      | None -> ()
      | Some ab ->
          let pl = ab.ab_placement in
          let vw = float_of_int (max 1 pl.Ir.vector_width) in
          (* vectorization folds [vw] scalar accesses into one *)
          let count =
            if pl.Ir.vector_width > 1 && a.Profile.ac_last_const then
              a.Profile.ac_count /. vw
            else a.Profile.ac_count
          in
          let elem_b = float_of_int ab.ab_elem_bytes in
          let access_bytes = elem_b *. vw in
          (match pl.Ir.space with
          | Ir.MGlobal | Ir.MHost
            when d.Device.has_l2 && ab.ab_total_bytes <= d.Device.l2_bytes ->
              (* the whole array is L2-resident after the first pass: global
                 accesses behave like a slightly slower on-chip memory —
                 this is what flattens Fig 8(b) on Fermi *)
              global_s :=
                !global_s +. (count *. 2.0 /. (lanes *. clock));
              global_bytes :=
                !global_bytes +. float_of_int ab.ab_total_bytes;
              gslot_cycles := !gslot_cycles +. (count *. 2.0);
              cache_hits := !cache_hits +. count;
              gtx_coalesced := !gtx_coalesced +. (count /. warp_f)
          | Ir.MGlobal | Ir.MHost ->
              (* coalescing: bytes actually moved per useful byte *)
              let waste =
                match a.Profile.ac_pattern with
                | Profile.PThreadLinear ->
                    (* consecutive threads access consecutive *rows*: the
                       memory stride is the row length, so scalar component
                       accesses of wide rows fetch mostly-unused segment
                       bytes (the paper's motivation for float4
                       vectorization) *)
                    let stride_bytes =
                      if a.Profile.ac_last_const then
                        elem_b *. float_of_int (max 1 ab.ab_row_len)
                      else access_bytes
                    in
                    Float.max 1.0
                      (Float.min (128.0 /. access_bytes)
                         (stride_bytes /. access_bytes))
                | Profile.PThreadStrided ->
                    (* each lane touches its own memory segment *)
                    Float.min
                      (128.0 /. access_bytes)
                      (Float.max 2.0 (float_of_int ab.ab_row_len))
                | Profile.PStream | Profile.PBroadcast ->
                    (* whole warp reads the same address: one segment *)
                    1.0 /. float_of_int d.Device.warp
              in
              (* cache filtering of re-read data *)
              let miss =
                match a.Profile.ac_pattern with
                | Profile.PStream | Profile.PBroadcast ->
                    1.0 -. d.Device.cache_hit_shared
                | Profile.PThreadLinear when d.Device.has_l1 ->
                    (* an L1 line holds whole rows: after the first
                       component read the rest of the row hits cache *)
                    1.0 /. waste
                | Profile.PThreadStrided when d.Device.has_l1 ->
                    (* strided rows often refetched from L1 lines *)
                    0.5
                | _ -> 1.0
              in
              let bytes =
                match a.Profile.ac_pattern with
                | Profile.PStream | Profile.PBroadcast ->
                    (* one transaction per warp, with a minimum transaction
                       granularity on the memory bus *)
                    count /. float_of_int d.Device.warp
                    *. Float.max 32.0 access_bytes
                    *. miss
                | _ -> count *. access_bytes *. waste *. miss
              in
              global_bytes := !global_bytes +. bytes;
              (* exposed latency: transactions per warp access grow with the
                 coalescing waste *)
              let tx_per_warp_access =
                match a.Profile.ac_pattern with
                | Profile.PStream | Profile.PBroadcast -> miss
                | _ ->
                    Lime_support.Util.clampf 1.0
                      (float_of_int d.Device.warp)
                      waste
                    *. miss
              in
              let transactions =
                count /. float_of_int d.Device.warp *. tx_per_warp_access
              in
              lat_s := !lat_s +. latency_seconds transactions;
              lat_tx := !lat_tx +. transactions;
              (* warp accesses that replayed (> 1 segment per warp) count
                 as uncoalesced transactions, the rest as coalesced *)
              if tx_per_warp_access > 1.0 then
                gtx_uncoalesced := !gtx_uncoalesced +. transactions
              else gtx_coalesced := !gtx_coalesced +. transactions;
              cache_hits := !cache_hits +. (count *. (1.0 -. miss));
              cache_misses := !cache_misses +. (count *. miss);
              (* cached hits still pay an L1 access slot *)
              if d.Device.has_l1 then (
                global_s :=
                  !global_s +. (count *. 1.0 /. (lanes *. clock));
                gslot_cycles := !gslot_cycles +. count)
          | Ir.MConstant ->
              let cost =
                match a.Profile.ac_pattern with
                | Profile.PStream | Profile.PBroadcast ->
                    const_broadcast := !const_broadcast +. count;
                    d.Device.const_cost
                | _ ->
                    (* divergent constant access serializes the warp *)
                    const_serialized := !const_serialized +. count;
                    float_of_int d.Device.warp *. 0.5
              in
              bytes_constant := !bytes_constant +. (count *. access_bytes);
              constant_s :=
                !constant_s +. (count *. cost /. (lanes *. clock))
          | Ir.MLocal ->
              let stride =
                if pl.Ir.padded then ab.ab_row_len + 1 else ab.ab_row_len
              in
              let conflict =
                match a.Profile.ac_pattern with
                | Profile.PStream | Profile.PBroadcast -> 1.0
                | _ ->
                    float_of_int
                      (max 1 (gcd (max 1 stride) d.Device.local_banks))
              in
              local_s :=
                !local_s
                +. (count *. d.Device.local_cost *. conflict
                   /. (lanes *. clock));
              local_accesses := !local_accesses +. count;
              bank_replays := !bank_replays +. (count *. (conflict -. 1.0));
              bytes_local := !bytes_local +. (count *. access_bytes);
              (* staging traffic: each work group streams the array through
                 its tile once *)
              let groups =
                Float.max 1.0 (p.Profile.p_items /. float_of_int group_size)
              in
              let staging = float_of_int ab.ab_total_bytes *. groups in
              global_bytes := !global_bytes +. staging;
              (* staging streams coalesce into 128B segments *)
              gtx_coalesced := !gtx_coalesced +. (staging /. 128.0)
          | Ir.MImage ->
              let hit = d.Device.tex_hit_rate in
              let texel_w =
                Float.min 4.0 (float_of_int (max 1 ab.ab_row_len))
              in
              let tex_count = count /. texel_w in
              image_s :=
                !image_s
                +. (tex_count *. d.Device.tex_cost /. (lanes *. clock));
              let miss_tx = tex_count /. float_of_int d.Device.warp
                            *. (1.0 -. hit) in
              lat_s := !lat_s +. latency_seconds miss_tx;
              lat_tx := !lat_tx +. miss_tx;
              gtx_coalesced := !gtx_coalesced +. miss_tx;
              tex_fetches := !tex_fetches +. tex_count;
              tex_hits := !tex_hits +. (tex_count *. hit);
              tex_misses := !tex_misses +. (tex_count *. (1.0 -. hit));
              bytes_image := !bytes_image +. (tex_count *. elem_b *. texel_w);
              global_bytes :=
                !global_bytes
                +. (tex_count *. (1.0 -. hit) *. elem_b *. texel_w)
          | Ir.MPrivate -> ()))
    p.Profile.p_accesses;
  let global_s = !global_s +. (!global_bytes /. bw) in
  let mem_s = global_s +. !local_s +. !constant_s +. !image_s in
  let launch_s = d.Device.launch_overhead_us *. 1e-6 in
  (* reductions add a log-depth second phase *)
  let reduce_s =
    if p.Profile.p_reduce_elems > 0.0 then
      (p.Profile.p_reduce_elems /. (lanes *. clock)) +. launch_s
    else 0.0
  in
  (* exposed latency is additive: dependent loads in tight loops stall
     warps beyond what the in-flight pool can hide *)
  let total =
    Float.max compute_s mem_s +. !lat_s +. launch_s +. reduce_s
  in
  let bd =
    {
      bd_compute_s = compute_s;
      bd_global_s = global_s +. !lat_s;
      bd_local_s = !local_s;
      bd_constant_s = !constant_s;
      bd_image_s = !image_s;
      bd_launch_s = launch_s;
      bd_total_s = total;
    }
  in
  (* launch geometry, same rules as {!launch_attrs} *)
  let items = Float.max 1.0 p.Profile.p_items in
  let groups = ceil (items /. float_of_int group_size) in
  let warps_per_group = (group_size + d.Device.warp - 1) / d.Device.warp in
  let total_warps = groups *. float_of_int warps_per_group in
  let pool = float_of_int (d.Device.sms * d.Device.inflight_warps) in
  let counters =
    {
      Counters.ct_device = d.Device.name;
      ct_peak_bw = bw;
      ct_peak_flops = Device.peak_flops d;
      ct_items = items;
      ct_work_groups = groups;
      ct_warps = total_warps;
      ct_occupancy = Float.min 1.0 (total_warps /. pool);
      ct_flops = p.Profile.p_total_fp;
      ct_issue_cycles = issue_slots;
      ct_access_slots = access_slots;
      ct_reduce_elems = p.Profile.p_reduce_elems;
      ct_gtx_total = !gtx_coalesced +. !gtx_uncoalesced;
      ct_gtx_coalesced = !gtx_coalesced;
      ct_gtx_uncoalesced = !gtx_uncoalesced;
      ct_bytes_global = !global_bytes;
      ct_gslot_cycles = !gslot_cycles;
      ct_lat_tx = !lat_tx;
      ct_cache_hits = !cache_hits;
      ct_cache_misses = !cache_misses;
      ct_local_accesses = !local_accesses;
      ct_bank_replays = !bank_replays;
      ct_bytes_local = !bytes_local;
      ct_const_broadcast = !const_broadcast;
      ct_const_serialized = !const_serialized;
      ct_bytes_constant = !bytes_constant;
      ct_tex_fetches = !tex_fetches;
      ct_tex_hits = !tex_hits;
      ct_tex_misses = !tex_misses;
      ct_bytes_image = !bytes_image;
      ct_compute_s = compute_s;
      ct_global_s = global_s;
      ct_local_s = !local_s;
      ct_constant_s = !constant_s;
      ct_image_s = !image_s;
      ct_latency_s = !lat_s;
      ct_launch_s = launch_s;
      ct_reduce_s = reduce_s;
      ct_total_s = total;
    }
  in
  (bd, counters)

let kernel_time d p arrays = fst (kernel_time_ex d p arrays)

(* ------------------------------------------------------------------ *)
(* Launch attributes for tracing                                       *)
(* ------------------------------------------------------------------ *)

(** Key/value description of one kernel launch for trace attachments:
    work-group geometry, warp count, an occupancy estimate (in-flight warp
    demand vs. the device's latency-hiding pool), and the worst local-memory
    bank-conflict degree among the bound arrays — the same gcd(stride,
    banks) rule the timing model charges. *)
let launch_attrs (d : Device.t) (p : Profile.t)
    (arrays : array_binding list) : (string * string) list =
  let items = Float.max 1.0 p.Profile.p_items in
  let groups = ceil (items /. float_of_int group_size) in
  let warps_per_group =
    (group_size + d.Device.warp - 1) / d.Device.warp
  in
  let total_warps = groups *. float_of_int warps_per_group in
  let pool = float_of_int (d.Device.sms * d.Device.inflight_warps) in
  let occupancy = Float.min 1.0 (total_warps /. pool) in
  let bank_conflict =
    List.fold_left
      (fun acc ab ->
        match ab.ab_placement.Ir.space with
        | Ir.MLocal ->
            let stride =
              if ab.ab_placement.Ir.padded then ab.ab_row_len + 1
              else ab.ab_row_len
            in
            max acc (max 1 (gcd (max 1 stride) d.Device.local_banks))
        | _ -> acc)
      1 arrays
  in
  [
    ("device", d.Device.name);
    ("work_items", Printf.sprintf "%.0f" items);
    ("work_group_size", string_of_int group_size);
    ("work_groups", Printf.sprintf "%.0f" groups);
    ("warps_per_group", string_of_int warps_per_group);
    ("occupancy", Printf.sprintf "%.2f" occupancy);
    ("bank_conflict_degree", string_of_int bank_conflict);
    ("double_frac", Printf.sprintf "%.2f" (Profile.double_frac p));
    ("approx", if p.Profile.p_approx then "true" else "false");
  ]

(* ------------------------------------------------------------------ *)
(* Array bindings from runtime values                                  *)
(* ------------------------------------------------------------------ *)

let binding_of_shape ~name ~elem ~(shape : int array)
    (pl : Ir.placement) : array_binding =
  let total = Array.fold_left ( * ) 1 shape in
  {
    ab_name = name;
    ab_elem_bytes = Ir.scalar_size_bytes elem;
    ab_total_bytes = total * Ir.scalar_size_bytes elem;
    ab_row_len = (if Array.length shape <= 1 then 1 else shape.(Array.length shape - 1));
    ab_placement = pl;
  }


(* ------------------------------------------------------------------ *)
(* Bytecode time from an analytic profile                              *)
(* ------------------------------------------------------------------ *)

(** Estimate the "Lime compiled to bytecode" (JVM) execution time of the
    same work, from the analytic profile — the Fig 7 baseline.  Matches the
    weights of {!Device.jvm_time} used when counting a real interpreter
    run. *)
let jvm_time_profile ?(m = Device.jvm_default) (p : Profile.t) : float =
  let accesses =
    List.fold_left (fun acc a -> acc +. a.Profile.ac_count) 0.0
      p.Profile.p_accesses
    +. p.Profile.p_private_accesses
  in
  let cycles =
    (p.Profile.p_alu *. m.Device.jvm_alu)
    +. (p.Profile.p_div *. m.Device.jvm_div)
    +. (p.Profile.p_sqrt *. m.Device.jvm_sqrt)
    +. (p.Profile.p_trans *. m.Device.jvm_trans)
    +. (accesses *. (m.Device.jvm_mem +. 0.3 (* bounds check *)))
  in
  cycles /. (m.Device.jvm_clock_ghz *. 1e9)
