(** Automated exploration of the memory mapping (paper §4.2.1): time every
    Fig 8 configuration of a kernel on a device model and rank them.
    Driven by `limec --sweep` and `examples/autotune.exe`. *)

type entry = {
  at_name : string;  (** configuration name, e.g. ["Local+Conflicts removed"] *)
  at_config : Lime_gpu.Memopt.config;
  at_time_s : float;
  at_breakdown : Model.breakdown;
}

val bindings_of :
  Lime_gpu.Kernel.kernel ->
  Lime_gpu.Memopt.decision list ->
  shapes:(string * int array) list ->
  out_shape:int array option ->
  Model.array_binding list

val time_config :
  Device.t ->
  Lime_gpu.Kernel.kernel ->
  Lime_gpu.Memopt.config ->
  shapes:(string * int array) list ->
  scalars:(string * float) list ->
  Model.breakdown

val time_config_ex :
  Device.t ->
  Lime_gpu.Kernel.kernel ->
  Lime_gpu.Memopt.config ->
  shapes:(string * int array) list ->
  scalars:(string * float) list ->
  Model.breakdown * Counters.t
(** Like {!time_config}, but also returns the launch's simulated hardware
    counters (see {!Model.kernel_time_ex}). *)

val counters_for :
  Device.t ->
  Lime_gpu.Kernel.kernel ->
  Lime_gpu.Memopt.config ->
  shapes:(string * int array) list ->
  scalars:(string * float) list ->
  Counters.t
(** The counters of one configuration — the winner's headline persisted by
    [Tunestore]. *)

val sweep :
  Device.t ->
  Lime_gpu.Kernel.kernel ->
  shapes:(string * int array) list ->
  scalars:(string * float) list ->
  entry list
(** All eight configurations, fastest first. *)

val best :
  Device.t ->
  Lime_gpu.Kernel.kernel ->
  shapes:(string * int array) list ->
  scalars:(string * float) list ->
  entry

val describe : entry list -> string
