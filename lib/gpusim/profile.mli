(** Analytic kernel profiler: the dynamic operation mix of a kernel launch,
    computed from the kernel IR and the actual argument shapes by weighting
    every site with its enclosing loop trip counts.  Exact for the affine
    benchmarks; data-dependent loops fall back to estimates and set
    {!t.p_approx}. *)

type pattern =
  | PThreadLinear  (** coalesced: leading index = thread id *)
  | PThreadStrided  (** thread-dependent, non-unit stride *)
  | PStream  (** same address across threads, varying over an inner loop *)
  | PBroadcast  (** loop-invariant address *)

val pattern_name : pattern -> string

type access = {
  ac_root : string;
  ac_pattern : pattern;
  ac_store : bool;
  ac_last_const : bool;  (** innermost index is a compile-time constant *)
  mutable ac_count : float;  (** dynamic accesses over the whole launch *)
}

type t = {
  p_items : float;  (** work items of the widest top-level parallel loop *)
  p_alu : float;
  p_div : float;
  p_sqrt : float;
  p_trans : float;
  p_double_ops : float;
  p_total_fp : float;
  p_accesses : access list;
  p_private_accesses : float;
  p_reduce_elems : float;
  p_last_parfor_items : float;
      (** trip count of the *last* top-level parallel loop — sizes the
          kernel result buffer *)
  p_approx : bool;  (** a trip count had to be estimated *)
}

val double_frac : t -> float
(** Fraction of floating-point work executed in double precision. *)

val profile :
  ?hoist_invariant:bool ->
  ?affine_lanes:bool ->
  Lime_gpu.Kernel.kernel ->
  Lime_gpu.Memopt.decision list ->
  shapes:(string * int array) list ->
  scalars:(string * float) list ->
  t
(** [profile kernel decisions ~shapes ~scalars] profiles one launch;
    [shapes] gives each array argument's shape, [scalars] the value of
    scalar arguments appearing in loop bounds.

    [~hoist_invariant:true] (default false) models the backend compiler's
    loop-invariant code motion: an access whose address does not mention
    the innermost enclosing sequential loops is counted once per outer
    iteration.  [~affine_lanes:true] (default false) marks affine
    [v*m + c] innermost indices as const-lane accesses.  Both default off
    so the paper-fidelity Fig 8 path is bit-identical; the rewrite
    engine's scorer turns both on to see the effect of loop
    restructuring. *)

val to_string : t -> string

val report : t -> string
(** Aligned multi-line profile report: work items, the FLOP mix
    (alu/div/sqrt/transcendental with shares, double-precision fraction)
    and the per-array access-pattern table (pattern, load/store,
    const-lane, dynamic count, share of all accesses). *)
