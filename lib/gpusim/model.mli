(** Device timing model: converts a kernel {!Profile.t} plus memory
    placements into an execution-time estimate for a {!Device.t}.
    Throughput-based (roofline) with additive exposed-latency penalties —
    see the module implementation header for the modelling assumptions. *)

type breakdown = {
  bd_compute_s : float;
  bd_global_s : float;  (** bandwidth + exposed latency *)
  bd_local_s : float;
  bd_constant_s : float;
  bd_image_s : float;
  bd_launch_s : float;
  bd_total_s : float;
}

val pp_breakdown : Format.formatter -> breakdown -> unit

(** What the memory model needs to know about one array argument. *)
type array_binding = {
  ab_name : string;
  ab_elem_bytes : int;
  ab_total_bytes : int;
  ab_row_len : int;  (** innermost dimension length (1 if rank 1) *)
  ab_placement : Lime_ir.Ir.placement;
}

val group_size : int
(** Work-group size assumed by the local-memory staging model. *)

val kernel_time : Device.t -> Profile.t -> array_binding list -> breakdown

val kernel_time_ex :
  Device.t -> Profile.t -> array_binding list -> breakdown * Counters.t
(** Like {!kernel_time}, but also returns the simulated hardware counters
    accumulated by the *same pass*, so counter × device-cost reconstructs
    each breakdown component exactly (see {!Counters}). *)

val launch_attrs :
  Device.t -> Profile.t -> array_binding list -> (string * string) list
(** Key/value description of one launch for trace attachments: device
    name, work-group geometry, warps, an occupancy estimate, the worst
    local-memory bank-conflict degree (gcd of row stride and bank count,
    the factor the timing model charges), double fraction, approx flag. *)

val binding_of_shape :
  name:string ->
  elem:Lime_ir.Ir.scalar ->
  shape:int array ->
  Lime_ir.Ir.placement ->
  array_binding

val jvm_time_profile : ?m:Device.jvm_model -> Profile.t -> float
(** The "Lime compiled to bytecode" time of the same work — the Fig 7
    baseline. *)
