(** Simulated per-launch hardware counters.

    The quantities a real GPGPU profiler reports — global-memory
    transactions split coalesced/uncoalesced, bytes moved per memory
    space, cache hits and misses, local-memory bank-conflict replays,
    constant broadcast vs. serialized reads, texture fetches, warps and
    occupancy — derived from the same inputs as the timing model
    ({!Profile.t}, the array bindings, {!Device.t}) and accumulated by the
    *same pass* that computes {!Model.kernel_time}, so every charged
    second of the breakdown is attributable to counter × cost.  The raw
    counts are floats because they are analytic expectations (loop trip
    products), not sampled events.

    {!Model.kernel_time_ex} is the only constructor; this module owns the
    record, its derived quantities (achieved bandwidth and FLOP/s,
    arithmetic intensity), the roofline classification, aggregation, and
    the terminal report. *)

(** Which resource bounds the launch, in the roofline sense: the model's
    kernel time is [max(compute, memory) + exposed latency + launch
    overhead], so a launch is latency-bound when the additive overheads
    exceed the overlapped throughput term, otherwise whichever side of the
    [max] won. *)
type roofline = Compute_bound | Memory_bound | Latency_bound

type t = {
  (* identity and peaks *)
  ct_device : string;
  ct_peak_bw : float;  (** device-memory bandwidth, bytes/s *)
  ct_peak_flops : float;  (** peak single-precision ops/s *)
  (* launch geometry *)
  ct_items : float;
  ct_work_groups : float;
  ct_warps : float;  (** warps (wavefronts) launched *)
  ct_occupancy : float;  (** in-flight warp demand vs. the device pool, (0,1] *)
  (* compute *)
  ct_flops : float;  (** floating-point operations *)
  ct_issue_cycles : float;  (** weighted issue slots, incl. the fp64 scale *)
  ct_access_slots : float;  (** non-private access count (the CPU path charges these as issue slots) *)
  ct_reduce_elems : float;
  (* global memory *)
  ct_gtx_total : float;  (** global-memory transactions (warp-granularity segments) *)
  ct_gtx_coalesced : float;
  ct_gtx_uncoalesced : float;  (** transactions issued by warp accesses that replayed (waste > 1) *)
  ct_bytes_global : float;  (** bytes over the device-memory bus (incl. local staging and texture misses) *)
  ct_gslot_cycles : float;  (** on-chip slot cycles charged for cache-resident global accesses *)
  ct_lat_tx : float;  (** latency-exposed transactions (global + texture misses) *)
  ct_cache_hits : float;  (** L1/L2 (or shared-read path) hits; 0 on cache-less devices *)
  ct_cache_misses : float;
  (* local memory *)
  ct_local_accesses : float;
  ct_bank_replays : float;  (** extra serialized passes: count × (conflict degree − 1) *)
  ct_bytes_local : float;
  (* constant memory *)
  ct_const_broadcast : float;
  ct_const_serialized : float;  (** divergent reads that serialize the warp *)
  ct_bytes_constant : float;
  (* image / texture *)
  ct_tex_fetches : float;
  ct_tex_hits : float;
  ct_tex_misses : float;
  ct_bytes_image : float;  (** texel bytes sampled *)
  (* the seconds the timing model charged, by space — reconstructible
     from the raw counts above with the device's cost parameters *)
  ct_compute_s : float;
  ct_global_s : float;  (** bus bytes + on-chip slot cycles, excl. latency *)
  ct_local_s : float;
  ct_constant_s : float;
  ct_image_s : float;
  ct_latency_s : float;
  ct_launch_s : float;
  ct_reduce_s : float;
  ct_total_s : float;
}

(** {1 Derived quantities} *)

val mem_s : t -> float
(** The memory side of the roofline [max]: global + local + constant +
    image seconds. *)

val achieved_bw : t -> float
(** Bytes over the bus / total time, bytes/s (0 for a zero-time launch). *)

val achieved_flops : t -> float

val arithmetic_intensity : t -> float
(** FLOPs per byte of device-memory traffic; [infinity] when the launch
    moved no global bytes. *)

val classify : t -> roofline

val limiter : t -> string
(** The single largest time contributor, by name: ["compute"],
    ["global-memory"], ["local-memory"], ["constant-memory"], ["image"],
    ["latency"] or ["launch-overhead"]. *)

val roofline_name : roofline -> string
(** ["compute-bound"], ["memory-bound"], ["latency-bound"]. *)

val add : t -> t -> t
(** Aggregate two launches: counts, bytes and seconds sum; occupancy is
    the warp-weighted mean; device/peaks are kept from the first operand
    (["<mixed>"] when the names differ). *)

val report : t -> string
(** Aligned per-launch counter table plus a roofline summary — the
    counters-side companion of {!Profile.report}. *)

val span_attrs : t -> (string * string) list
(** Compact key/value rendering for trace-span attachment. *)
