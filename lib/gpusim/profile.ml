(** Analytic kernel profiler.

    Computes the dynamic operation mix of a kernel launch from the kernel IR
    and the actual argument shapes, without executing every work item: each
    access site and arithmetic node is weighted by the product of enclosing
    loop trip counts.  All the paper's benchmarks are affine (loop bounds
    are array lengths or constants), so the profile is exact; data-dependent
    loops fall back to a trip-count estimate and set {!t.p_approx}.

    Functional correctness is validated separately by executing the same IR
    in the reference interpreter — this module is only about *time*. *)

module Ir = Lime_ir.Ir
module B = Lime_typecheck.Tast

type pattern =
  | PThreadLinear  (** coalesced: leading index = thread id *)
  | PThreadStrided  (** thread-dependent, non-unit stride *)
  | PStream  (** same address across threads, varying over an inner loop *)
  | PBroadcast  (** loop-invariant address *)

let pattern_name = function
  | PThreadLinear -> "thread-linear"
  | PThreadStrided -> "thread-strided"
  | PStream -> "stream"
  | PBroadcast -> "broadcast"

type access = {
  ac_root : string;
  ac_pattern : pattern;
  ac_store : bool;
  ac_last_const : bool;  (** innermost index is a compile-time constant *)
  mutable ac_count : float;  (** dynamic accesses over the whole launch *)
}

type t = {
  p_items : float;  (** work items of the top-level parallel loop *)
  p_alu : float;
  p_div : float;
  p_sqrt : float;
  p_trans : float;
  p_double_ops : float;
  p_total_fp : float;
  p_accesses : access list;
  p_private_accesses : float;
  p_reduce_elems : float;
  p_last_parfor_items : float;
      (** trip count of the *last* top-level parallel loop — the one that
          fills the kernel result, used to size the output buffer *)
  p_approx : bool;  (** a trip count had to be estimated *)
}

let double_frac p = if p.p_total_fp = 0.0 then 0.0 else p.p_double_ops /. p.p_total_fp

(* ------------------------------------------------------------------ *)
(* Profiling walker                                                    *)
(* ------------------------------------------------------------------ *)

type ctx = {
  kernel : Lime_gpu.Kernel.kernel;
  shapes : (string * int array) list;  (** array param -> shape *)
  scalars : (string * float) list;  (** scalar param -> value *)
  placements : (string * Ir.placement) list;
  views : (string, string * Ir.expr list) Hashtbl.t;
  accs : (string * pattern * bool * bool, access) Hashtbl.t;
  mutable alu : float;
  mutable div : float;
  mutable sqrt_ : float;
  mutable trans : float;
  mutable double_ops : float;
  mutable total_fp : float;
  mutable private_accs : float;
  mutable reduce_elems : float;
  mutable items : float;
  mutable last_items : float;
  mutable approx : bool;
  mutable par_vars : string list;
  mutable seq_vars : string list;
  mutable seq_loops : (string * float) list;
      (** enclosing sequential loops, innermost first, with trip counts —
          used by the invariant-hoisting extension *)
  hoist : bool;
      (** model loop-invariant code motion: an access whose index does not
          mention the innermost enclosing sequential loops is issued once
          per outer iteration, not once per inner iteration *)
  affine : bool;
      (** treat affine [v*m + c] innermost indices as statically-known
          lanes (see {!Lime_gpu.Memopt.affine_lane}) *)
  thread_vars : (string, unit) Hashtbl.t;
  (* local (non-param) array shapes discovered from declarations *)
  local_shapes : (string, int array) Hashtbl.t;
  (* scalar variables with statically known values (e.g. n = arr.length) *)
  scalar_env : (string, float) Hashtbl.t;
}

let rec resolve ctx (e : Ir.expr) (suffix : Ir.expr list) :
    (string * Ir.expr list) option =
  match e with
  | Ir.Var v -> (
      match Hashtbl.find_opt ctx.views v with
      | Some (root, prefix) -> Some (root, prefix @ suffix)
      | None -> Some (v, suffix))
  | Ir.Load (b, idx) -> resolve ctx b (idx @ suffix)
  | _ -> None

let root_shape ctx root : int array option =
  match List.assoc_opt root ctx.shapes with
  | Some s -> Some s
  | None -> Hashtbl.find_opt ctx.local_shapes root

let placement_of ctx root : Ir.placement =
  match List.assoc_opt root ctx.placements with
  | Some p -> p
  | None -> Ir.default_placement

(** Best-effort static evaluation of an integer expression given known
    shapes and scalar parameter values. *)
let rec eval_int ctx (e : Ir.expr) : float option =
  match e with
  | Ir.Const (Ir.CInt i) -> Some (float_of_int i)
  | Ir.Const (Ir.CLong l) -> Some (Int64.to_float l)
  | Ir.Var v -> (
      match Hashtbl.find_opt ctx.scalar_env v with
      | Some x -> Some x
      | None -> List.assoc_opt v ctx.scalars)
  | Ir.Len (a, d) -> (
      match resolve ctx a [] with
      | Some (root, prefix) -> (
          match root_shape ctx root with
          | Some shape ->
              let dim = List.length prefix + d in
              if dim < Array.length shape then
                Some (float_of_int shape.(dim))
              else None
          | None -> None)
      | None -> None)
  | Ir.Bin (op, _, a, b) -> (
      match (eval_int ctx a, eval_int ctx b) with
      | Some x, Some y -> (
          match op with
          | Lime_frontend.Ast.Add -> Some (x +. y)
          | Lime_frontend.Ast.Sub -> Some (x -. y)
          | Lime_frontend.Ast.Mul -> Some (x *. y)
          | Lime_frontend.Ast.Div when y <> 0.0 -> Some (Float.of_int (int_of_float (x /. y)))
          | _ -> None)
      | _ -> None)
  | Ir.Cast (_, _, a) -> eval_int ctx a
  | _ -> None

let expr_vars (e : Ir.expr) : string list =
  let acc = ref [] in
  Ir.iter_expr
    (fun e -> match e with Ir.Var v -> acc := v :: !acc | _ -> ())
    e;
  !acc

let classify ctx (idx : Ir.expr) : pattern =
  let vars = expr_vars idx in
  let is_par v = List.mem v ctx.par_vars || Hashtbl.mem ctx.thread_vars v in
  let mentions_par = List.exists is_par vars in
  let mentions_seq = List.exists (fun v -> List.mem v ctx.seq_vars) vars in
  let pure_of r = not (List.exists is_par (expr_vars r)) in
  if mentions_par then
    match idx with
    | Ir.Var v when List.mem v ctx.par_vars -> PThreadLinear
    | Ir.Bin ((Lime_frontend.Ast.Add | Lime_frontend.Ast.Sub), _, Ir.Var v, r)
      when List.mem v ctx.par_vars && pure_of r ->
        PThreadLinear
    | Ir.Bin (Lime_frontend.Ast.Add, _, r, Ir.Var v)
      when List.mem v ctx.par_vars && pure_of r ->
        PThreadLinear
    | _ -> PThreadStrided
  else if mentions_seq then PStream
  else PBroadcast

let record_access ctx ~mult root (full : Ir.expr list) ~store =
  let mult =
    (* LICM: divide by the trips of the maximal contiguous run of innermost
       sequential loops whose variables the address does not mention — the
       backend compiler keeps such a value in a register across them.
       Applies to loads and to stores (accumulator promotion). *)
    if not ctx.hoist then mult
    else begin
      let idx_vars = List.concat_map expr_vars full in
      let rec invariant_trips = function
        | (v, t) :: rest when not (List.mem v idx_vars) ->
            Float.max 1.0 t *. invariant_trips rest
        | _ -> 1.0
      in
      mult /. invariant_trips ctx.seq_loops
    end
  in
  let p = placement_of ctx root in
  if p.Ir.space = Ir.MPrivate then
    ctx.private_accs <- ctx.private_accs +. mult
  else begin
    let pattern =
      (* arrays allocated inside the parallel loop that did not fit in
         private memory are per-thread spills: every thread touches its own
         instance *)
      if Hashtbl.mem ctx.local_shapes root && ctx.par_vars <> [] then
        PThreadStrided
      else
        match full with lead :: _ -> classify ctx lead | [] -> PBroadcast
    in
    let last_const =
      match List.rev full with
      | last :: _ when List.length full > 1 -> (
          match last with
          | Ir.Const _ -> true
          | _ -> ctx.affine && Lime_gpu.Memopt.affine_lane last <> None)
      | _ -> false
    in
    let key = (root, pattern, store, last_const) in
    match Hashtbl.find_opt ctx.accs key with
    | Some a -> a.ac_count <- a.ac_count +. mult
    | None ->
        Hashtbl.add ctx.accs key
          {
            ac_root = root;
            ac_pattern = pattern;
            ac_store = store;
            ac_last_const = last_const;
            ac_count = mult;
          }
  end

let is_double = function Ir.SDouble -> true | _ -> false
let is_fp = function Ir.SDouble | Ir.SFloat -> true | _ -> false

let rec walk_expr ctx ~mult (e : Ir.expr) : unit =
  match e with
  | Ir.Const _ | Ir.Var _ | Ir.This | Ir.StaticGet _ -> ()
  | Ir.Bin (_, s, a, b) ->
      ctx.alu <- ctx.alu +. mult;
      if is_fp s then ctx.total_fp <- ctx.total_fp +. mult;
      if is_double s then ctx.double_ops <- ctx.double_ops +. mult;
      (match e with
      | Ir.Bin ((Lime_frontend.Ast.Div | Lime_frontend.Ast.Mod), _, _, _) ->
          ctx.div <- ctx.div +. mult
      | _ -> ());
      walk_expr ctx ~mult a;
      walk_expr ctx ~mult b
  | Ir.Un (_, s, a) | Ir.Cast (s, _, a) ->
      ctx.alu <- ctx.alu +. mult;
      if is_double s then ctx.double_ops <- ctx.double_ops +. mult;
      walk_expr ctx ~mult a
  | Ir.Load (b, idx) ->
      (match resolve ctx b idx with
      | Some (root, full) -> record_access ctx ~mult root full ~store:false
      | None -> ());
      (match b with Ir.Var _ -> () | _ -> ());
      List.iter (walk_expr ctx ~mult) idx
  | Ir.Len _ -> ()
  | Ir.Intrinsic (b, s, args) ->
      (match b with
      | B.BSin | B.BCos | B.BTan | B.BExp | B.BLog | B.BPow | B.BAtan2 ->
          ctx.trans <- ctx.trans +. mult
      | B.BSqrt | B.BRsqrt -> ctx.sqrt_ <- ctx.sqrt_ +. mult
      | _ -> ctx.alu <- ctx.alu +. mult);
      if is_fp s then ctx.total_fp <- ctx.total_fp +. mult;
      if is_double s then ctx.double_ops <- ctx.double_ops +. mult;
      List.iter (walk_expr ctx ~mult) args
  | Ir.NewArr (_, sizes) -> List.iter (walk_expr ctx ~mult) sizes
  | Ir.ArrLit (_, es) -> List.iter (walk_expr ctx ~mult) es
  | Ir.RangeE n -> walk_expr ctx ~mult n
  | Ir.ToValueE a -> walk_expr ctx ~mult a
  | Ir.CallF (_, args) | Ir.NewObj (_, args) ->
      List.iter (walk_expr ctx ~mult) args
  | Ir.CallM (_, r, args) ->
      walk_expr ctx ~mult r;
      List.iter (walk_expr ctx ~mult) args
  | Ir.FieldGet (r, _) -> walk_expr ctx ~mult r
  | Ir.TaskE _ | Ir.ConnectE _ -> ()

let rec walk_stmt ctx ~mult (s : Ir.stmt) : unit =
  match s with
  | Ir.SDecl (v, Ir.TArr aty, init) -> (
      match init with
      | Some (Ir.Load (b, idx)) -> (
          match resolve ctx b idx with
          | Some entry ->
              Hashtbl.replace ctx.views v entry;
              (* loading a row view costs one access of the row width *)
              let root, prefix = entry in
              record_access ctx ~mult root prefix ~store:false;
              List.iter (walk_expr ctx ~mult) idx
          | None -> ())
      | Some (Ir.Var src) ->
          (match Hashtbl.find_opt ctx.views src with
          | Some entry -> Hashtbl.replace ctx.views v entry
          | None -> Hashtbl.replace ctx.views v (src, []))
      | Some (Ir.NewArr (_, sizes) as e) ->
          (* record the shape when resolvable *)
          let dims =
            List.map
              (function
                | Ir.DFixed n -> Some (float_of_int n)
                | Ir.DDyn -> None)
              aty.Ir.dims
          in
          let sizes_v = List.map (eval_int ctx) sizes in
          let rec fill dims sizes =
            match (dims, sizes) with
            | [], _ -> []
            | Some d :: rest, s -> d :: fill rest s
            | None :: rest, Some s :: srest -> s :: fill rest srest
            | None :: rest, _ -> 0.0 :: fill rest []
          in
          let shape = fill dims sizes_v in
          Hashtbl.replace ctx.local_shapes v
            (Array.of_list (List.map int_of_float shape));
          walk_expr ctx ~mult e
      | Some e -> walk_expr ctx ~mult e
      | None -> ())
  | Ir.SDecl (v, Ir.TScalar _, init) ->
      (match init with
      | Some e -> (
          match eval_int ctx e with
          | Some x -> Hashtbl.replace ctx.scalar_env v x
          | None -> ())
      | None -> ());
      Option.iter (walk_expr ctx ~mult) init
  | Ir.SDecl (_, _, init) -> Option.iter (walk_expr ctx ~mult) init
  | Ir.SAssign (lv, e) ->
      (* a re-assigned scalar no longer has a single static value *)
      (match lv with
      | Ir.LVar v -> Hashtbl.remove ctx.scalar_env v
      | _ -> ());
      (* deferred map-output allocation carries the result shape *)
      (match (lv, e) with
      | Ir.LVar v, Ir.NewArr (aty, sizes) ->
          let dims =
            List.map
              (function
                | Ir.DFixed n -> Some (float_of_int n)
                | Ir.DDyn -> None)
              aty.Ir.dims
          in
          let sizes_v = List.map (eval_int ctx) sizes in
          let rec fill dims sizes =
            match (dims, sizes) with
            | [], _ -> []
            | Some d :: rest, s -> d :: fill rest s
            | None :: rest, Some s :: srest -> s :: fill rest srest
            | None :: rest, _ -> 0.0 :: fill rest []
          in
          Hashtbl.replace ctx.local_shapes v
            (Array.of_list
               (List.map int_of_float (fill dims sizes_v)))
      | _ -> ());
      ctx.alu <- ctx.alu +. mult;
      walk_expr ctx ~mult e
  | Ir.SArrStore (b, idx, v) ->
      (match resolve ctx b idx with
      | Some (root, full) ->
          (* row stores count one access per scalar element *)
          let width =
            match root_shape ctx root with
            | Some shape when List.length full < Array.length shape ->
                let rec prod d =
                  if d >= Array.length shape then 1.0
                  else float_of_int shape.(d) *. prod (d + 1)
                in
                prod (List.length full)
            | _ -> 1.0
          in
          record_access ctx ~mult:(mult *. width) root full ~store:true
      | None -> ());
      List.iter (walk_expr ctx ~mult) idx;
      walk_expr ctx ~mult v
  | Ir.SIf (c, a, b) ->
      walk_expr ctx ~mult c;
      ctx.alu <- ctx.alu +. mult;
      List.iter (walk_stmt ctx ~mult:(mult *. 0.5)) a;
      List.iter (walk_stmt ctx ~mult:(mult *. 0.5)) b
  | Ir.SWhile (c, b) ->
      (* data-dependent loop: estimate 16 trips and mark approximate *)
      ctx.approx <- true;
      let trips = 16.0 in
      walk_expr ctx ~mult:(mult *. trips) c;
      List.iter (walk_stmt ctx ~mult:(mult *. trips)) b
  | Ir.SFor (v, lo, hi, b) ->
      let trips =
        match (eval_int ctx lo, eval_int ctx hi) with
        | Some l, Some h -> Float.max 0.0 (h -. l)
        | _ ->
            ctx.approx <- true;
            16.0
      in
      ctx.alu <- ctx.alu +. (mult *. trips);  (* loop increment+compare *)
      ctx.seq_vars <- v :: ctx.seq_vars;
      ctx.seq_loops <- (v, trips) :: ctx.seq_loops;
      List.iter (walk_stmt ctx ~mult:(mult *. trips)) b;
      ctx.seq_loops <- List.tl ctx.seq_loops;
      ctx.seq_vars <- List.tl ctx.seq_vars
  | Ir.SParFor p ->
      let trips =
        match eval_int ctx p.Ir.pf_count with
        | Some n -> n
        | None ->
            ctx.approx <- true;
            1024.0
      in
      if ctx.par_vars = [] then begin
        ctx.items <- Float.max ctx.items trips;
        ctx.last_items <- trips
      end;
      ctx.par_vars <- p.Ir.pf_var :: ctx.par_vars;
      List.iter (walk_stmt ctx ~mult:(mult *. trips)) p.Ir.pf_body;
      ctx.par_vars <- List.tl ctx.par_vars
  | Ir.SReduce r ->
      let n =
        match resolve ctx r.Ir.rd_arr [] with
        | Some (root, _) -> (
            match root_shape ctx root with
            | Some shape when Array.length shape > 0 ->
                float_of_int shape.(0)
            | _ ->
                ctx.approx <- true;
                1024.0)
        | None ->
            ctx.approx <- true;
            1024.0
      in
      ctx.reduce_elems <- ctx.reduce_elems +. (mult *. n);
      ctx.alu <- ctx.alu +. (mult *. n);
      (match resolve ctx r.Ir.rd_arr [] with
      | Some (root, _) ->
          (* a parallel reduction reads its input coalesced (grid-stride):
             classify the synthetic index as the thread id *)
          ctx.par_vars <- "%reduce" :: ctx.par_vars;
          record_access ctx ~mult:(mult *. n) root [ Ir.Var "%reduce" ]
            ~store:false;
          ctx.par_vars <- List.tl ctx.par_vars
      | None -> ())
  | Ir.SInlineBlock (_, b) -> List.iter (walk_stmt ctx ~mult) b
  | Ir.SReturn e -> Option.iter (walk_expr ctx ~mult) e
  | Ir.SExpr e -> walk_expr ctx ~mult e
  | Ir.SBreak | Ir.SContinue -> ()
  | Ir.SFinish _ -> ()

(** Profile one kernel launch.

    [shapes] gives the actual shape of each array argument; [scalars] gives
    the value of scalar arguments that appear in loop bounds. *)
let profile ?(hoist_invariant = false) ?(affine_lanes = false)
    (k : Lime_gpu.Kernel.kernel)
    (decisions : Lime_gpu.Memopt.decision list)
    ~(shapes : (string * int array) list)
    ~(scalars : (string * float) list) : t =
  let ctx =
    {
      kernel = k;
      shapes;
      scalars;
      placements = Lime_gpu.Memopt.placements decisions;
      views = Hashtbl.create 16;
      accs = Hashtbl.create 16;
      alu = 0.0;
      div = 0.0;
      sqrt_ = 0.0;
      trans = 0.0;
      double_ops = 0.0;
      total_fp = 0.0;
      private_accs = 0.0;
      reduce_elems = 0.0;
      items = 1.0;
      last_items = 1.0;
      approx = false;
      par_vars = [];
      seq_vars = [];
      seq_loops = [];
      hoist = hoist_invariant;
      affine = affine_lanes;
      local_shapes = Hashtbl.create 8;
      scalar_env = Hashtbl.create 8;
      thread_vars = Lime_gpu.Taint.thread_dependent k.Lime_gpu.Kernel.k_body;
    }
  in
  List.iter (walk_stmt ctx ~mult:1.0) k.Lime_gpu.Kernel.k_body;
  {
    p_items = ctx.items;
    p_alu = ctx.alu;
    p_div = ctx.div;
    p_sqrt = ctx.sqrt_;
    p_trans = ctx.trans;
    p_double_ops = ctx.double_ops;
    p_total_fp = ctx.total_fp;
    p_accesses = Hashtbl.fold (fun _ a l -> a :: l) ctx.accs [];
    p_private_accesses = ctx.private_accs;
    p_reduce_elems = ctx.reduce_elems;
    p_last_parfor_items = ctx.last_items;
    p_approx = ctx.approx;
  }

(** Aligned per-kernel profile report: the FLOP mix and the access-pattern
    mix the memory optimizer reasons about, as a table a human can read off
    a terminal. *)
let report (p : t) : string =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "kernel profile%s" (if p.p_approx then " (approximate trip counts)" else "");
  line "  work items        %12.0f" p.p_items;
  line "  FLOP mix:";
  let flop name v =
    let pct =
      let tot = p.p_alu +. p.p_div +. p.p_sqrt +. p.p_trans in
      if tot <= 0.0 then 0.0 else 100.0 *. v /. tot
    in
    line "    %-16s %12.4g  %5.1f%%" name v pct
  in
  flop "alu" p.p_alu;
  flop "div" p.p_div;
  flop "sqrt" p.p_sqrt;
  flop "transcendental" p.p_trans;
  line "    %-16s %12.4g  %5.1f%% of FP work" "double-precision" p.p_double_ops
    (100.0 *. double_frac p);
  let total_mem =
    List.fold_left (fun acc a -> acc +. a.ac_count) 0.0 p.p_accesses
  in
  line "  memory accesses (total %.4g, private %.4g, reduce %.4g):" total_mem
    p.p_private_accesses p.p_reduce_elems;
  line "    %-14s %-14s %-5s %-10s %12s %7s" "array" "pattern" "kind"
    "lane" "count" "share";
  let sorted =
    List.sort (fun a b -> compare (b.ac_count, a.ac_root) (a.ac_count, b.ac_root))
      p.p_accesses
  in
  List.iter
    (fun a ->
      line "    %-14s %-14s %-5s %-10s %12.4g %6.1f%%" a.ac_root
        (pattern_name a.ac_pattern)
        (if a.ac_store then "store" else "load")
        (if a.ac_last_const then "const-lane" else "-")
        a.ac_count
        (if total_mem <= 0.0 then 0.0 else 100.0 *. a.ac_count /. total_mem))
    sorted;
  Buffer.contents b

let to_string (p : t) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "items=%.0f alu=%.3g div=%.3g sqrt=%.3g trans=%.3g double=%.0f%%%s\n"
       p.p_items p.p_alu p.p_div p.p_sqrt p.p_trans
       (100.0 *. double_frac p)
       (if p.p_approx then " (approx)" else ""));
  List.iter
    (fun a ->
      Buffer.add_string b
        (Printf.sprintf "  %-14s %-14s %s%s count=%.4g\n" a.ac_root
           (pattern_name a.ac_pattern)
           (if a.ac_store then "store" else "load ")
           (if a.ac_last_const then " const-lane" else "")
           a.ac_count))
    p.p_accesses;
  Buffer.contents b
