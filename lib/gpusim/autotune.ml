(** Automated exploration of the memory mapping (paper §4.2.1).

    The compiler "permits for any of the optimizations to be enabled and
    disabled so that it is possible to perform an automated exploration of
    the memory mapping and layout".  This module is that exploration as a
    library: given a kernel, a device and the launch shapes, it times every
    Fig 8 configuration on the device model and returns the ranking.

    The paper notes such auto-tuning "falls outside the scope of this
    paper" for the thread-count dimension; here we cover the dimension the
    paper's compiler does expose — the memory configuration — and the
    `examples/autotune.exe` demo drives it over the whole benchmark
    suite. *)

module Ir = Lime_ir.Ir
module Memopt = Lime_gpu.Memopt
module Kernel = Lime_gpu.Kernel

type entry = {
  at_name : string;
  at_config : Memopt.config;
  at_time_s : float;
  at_breakdown : Model.breakdown;
}

(** Array bindings for the timing model, derived from launch shapes and the
    optimizer's decisions (kernel-local arrays use their static shapes; the
    result array takes [out_shape]). *)
let bindings_of (k : Kernel.kernel) (decisions : Memopt.decision list)
    ~(shapes : (string * int array) list) ~(out_shape : int array option) :
    Model.array_binding list =
  let param_bindings =
    List.filter_map
      (fun (p, t) ->
        match (t, List.assoc_opt p shapes) with
        | Ir.TArr aty, Some shape ->
            Some
              (Model.binding_of_shape ~name:p ~elem:aty.Ir.elem ~shape
                 (Memopt.placement_for decisions p))
        | _ -> None)
      k.Kernel.k_params
  in
  let local_bindings =
    List.filter_map
      (fun (d : Memopt.decision) ->
        if List.mem_assoc d.Memopt.d_array k.Kernel.k_params then None
        else
          let info = d.Memopt.d_info in
          let shape =
            match (Ir.static_elem_count info.Memopt.ai_ty, out_shape) with
            | Some _, _ ->
                Array.of_list
                  (List.map
                     (function Ir.DFixed n -> n | Ir.DDyn -> 0)
                     info.Memopt.ai_ty.Ir.dims)
            | None, Some s -> s
            | None, None -> [| 0 |]
          in
          Some
            (Model.binding_of_shape ~name:d.Memopt.d_array
               ~elem:info.Memopt.ai_ty.Ir.elem ~shape d.Memopt.d_placement))
      decisions
  in
  param_bindings @ local_bindings

(** Time one configuration, also yielding its simulated hardware
    counters. *)
let time_config_ex (d : Device.t) (k : Kernel.kernel) (cfg : Memopt.config)
    ~(shapes : (string * int array) list)
    ~(scalars : (string * float) list) : Model.breakdown * Counters.t =
  let decisions = Memopt.optimize cfg k in
  let prof = Profile.profile k decisions ~shapes ~scalars in
  let out_shape =
    match k.Kernel.k_ret with
    | Ir.TArr aty ->
        Some
          (Array.of_list
             (List.map
                (function
                  | Ir.DFixed n -> n
                  | Ir.DDyn -> int_of_float prof.Profile.p_last_parfor_items)
                aty.Ir.dims))
    | _ -> None
  in
  Model.kernel_time_ex d prof (bindings_of k decisions ~shapes ~out_shape)

(** Time one configuration. *)
let time_config d k cfg ~shapes ~scalars =
  fst (time_config_ex d k cfg ~shapes ~scalars)

(** The counters of one configuration — what {!Tunestore} persists as the
    winner's headline. *)
let counters_for d k cfg ~shapes ~scalars =
  snd (time_config_ex d k cfg ~shapes ~scalars)

(** Sweep the eight Fig 8 configurations; result sorted fastest first. *)
let sweep (d : Device.t) (k : Kernel.kernel)
    ~(shapes : (string * int array) list)
    ~(scalars : (string * float) list) : entry list =
  Memopt.fig8_configs
  |> List.map (fun (name, cfg) ->
         let bd = time_config d k cfg ~shapes ~scalars in
         {
           at_name = name;
           at_config = cfg;
           at_time_s = bd.Model.bd_total_s;
           at_breakdown = bd;
         })
  |> List.sort (fun a b -> Float.compare a.at_time_s b.at_time_s)

(** The winning configuration for a device. *)
let best (d : Device.t) (k : Kernel.kernel)
    ~(shapes : (string * int array) list)
    ~(scalars : (string * float) list) : entry =
  List.hd (sweep d k ~shapes ~scalars)

let describe (entries : entry list) : string =
  entries
  |> List.map (fun e ->
         Printf.sprintf "%-32s %10.3f ms" e.at_name (e.at_time_s *. 1e3))
  |> String.concat "\n"
