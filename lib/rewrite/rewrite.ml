(** A catalog of composable kernel-IR rewrites.

    The paper's optimizer (§4.2) fixes eight memory configurations and
    sweeps them (Fig 8).  This module re-expresses that space — and extends
    it with loop restructuring the Fig 8 space cannot reach — as a library
    of small, independent, semantics-preserving transformations over
    {!Lime_gpu.Kernel.kernel}, in the style of Steuwer et al.'s rewrite
    rules for systematic GPU code generation.

    A rewrite is a {!step}: a [name] (its serialization for the tunestore),
    a cheap structural [applicable] test, a [legality_check] that explains
    why an application would be unsound, and an [apply].  Every step acts
    on the {e first} matching site in depth-first program order, which
    makes a sequence of names a complete, replayable description of a
    schedule.

    Two families:

    - {b structural} rewrites change the loop nest itself: [tile:T]
      (strip-mine an exactly divisible counted loop, guard-free),
      [interchange] (swap a perfectly nested sequential pair when every
      carried store is an associative accumulation), [unroll] (fully
      unroll a short constant loop, turning its index into a compile-time
      lane), [fission] / [fusion] (split/merge independent loop bodies),
      [scalarize] (small constant-indexed array to scalar variables),
      [soa] (split a fixed-innermost 2-D array into per-lane 1-D arrays);
    - {b placement} rewrites toggle one {!Lime_gpu.Memopt.config} flag
      ([local], [pad], [constant], [image], [vec]); the decision engine
      remains {!Lime_gpu.Memopt.optimize}, so the eight Fig 8
      configurations are exactly the canned sequences of
      {!fig8_sequences}.

    Rewrites never change observable results: structural steps are
    bit-exact except [interchange], which reassociates floating-point
    accumulations (validated under a relative tolerance by the
    differential tests). *)

module Ir = Lime_ir.Ir
module Kernel = Lime_gpu.Kernel
module Memopt = Lime_gpu.Memopt
module Ast = Lime_frontend.Ast

type state = {
  st_kernel : Kernel.kernel;
  st_config : Memopt.config;
}

let initial ?(config = Memopt.config_global) (k : Kernel.kernel) : state =
  { st_kernel = k; st_config = config }

exception Illegal of string

type step = {
  name : string;
  applicable : state -> bool;  (** a matching site exists (cheap) *)
  legality_check : state -> (unit, string) result;
      (** the first matching site can be rewritten soundly *)
  apply : state -> state;  (** raises {!Illegal} when the check fails *)
}

(* ------------------------------------------------------------------ *)
(* IR utilities                                                        *)
(* ------------------------------------------------------------------ *)

let rec map_expr (f : Ir.expr -> Ir.expr) (e : Ir.expr) : Ir.expr =
  let r = map_expr f in
  let e' =
    match e with
    | Ir.Const _ | Ir.Var _ | Ir.This | Ir.StaticGet _ | Ir.TaskE _ -> e
    | Ir.Bin (op, s, a, b) -> Ir.Bin (op, s, r a, r b)
    | Ir.Un (op, s, a) -> Ir.Un (op, s, r a)
    | Ir.Cast (t, fr, a) -> Ir.Cast (t, fr, r a)
    | Ir.Load (b, idx) -> Ir.Load (r b, List.map r idx)
    | Ir.Len (a, i) -> Ir.Len (r a, i)
    | Ir.Intrinsic (b, s, args) -> Ir.Intrinsic (b, s, List.map r args)
    | Ir.CallF (n, args) -> Ir.CallF (n, List.map r args)
    | Ir.CallM (n, rc, args) -> Ir.CallM (n, r rc, List.map r args)
    | Ir.FieldGet (a, fl) -> Ir.FieldGet (r a, fl)
    | Ir.NewArr (t, args) -> Ir.NewArr (t, List.map r args)
    | Ir.ArrLit (t, args) -> Ir.ArrLit (t, List.map r args)
    | Ir.NewObj (c, args) -> Ir.NewObj (c, List.map r args)
    | Ir.RangeE a -> Ir.RangeE (r a)
    | Ir.ToValueE a -> Ir.ToValueE (r a)
    | Ir.ConnectE (a, b) -> Ir.ConnectE (r a, r b)
  in
  f e'

let rec map_stmt ~(expr : Ir.expr -> Ir.expr)
    ?(stmt : Ir.stmt -> Ir.stmt = Fun.id) (s : Ir.stmt) : Ir.stmt =
  let fe = map_expr expr in
  let fs = map_stmt ~expr ~stmt in
  let s' =
    match s with
    | Ir.SDecl (v, t, init) -> Ir.SDecl (v, t, Option.map fe init)
    | Ir.SAssign (lv, e) ->
        let lv =
          match lv with
          | Ir.LVar _ | Ir.LStatic _ -> lv
          | Ir.LField (r, f) -> Ir.LField (fe r, f)
        in
        Ir.SAssign (lv, fe e)
    | Ir.SArrStore (b, idx, v) -> Ir.SArrStore (fe b, List.map fe idx, fe v)
    | Ir.SIf (c, a, b) -> Ir.SIf (fe c, List.map fs a, List.map fs b)
    | Ir.SWhile (c, b) -> Ir.SWhile (fe c, List.map fs b)
    | Ir.SFor (v, lo, hi, b) -> Ir.SFor (v, fe lo, fe hi, List.map fs b)
    | Ir.SParFor p ->
        Ir.SParFor
          {
            p with
            Ir.pf_count = fe p.Ir.pf_count;
            pf_body = List.map fs p.Ir.pf_body;
          }
    | Ir.SReduce r -> Ir.SReduce { r with Ir.rd_arr = fe r.Ir.rd_arr }
    | Ir.SInlineBlock (n, b) -> Ir.SInlineBlock (n, List.map fs b)
    | Ir.SReturn e -> Ir.SReturn (Option.map fe e)
    | Ir.SExpr e -> Ir.SExpr (fe e)
    | Ir.SBreak | Ir.SContinue -> s
    | Ir.SFinish (g, n) -> Ir.SFinish (fe g, Option.map fe n)
  in
  stmt s'

(** Substitute [Var v] by [repl] in a statement list. *)
let subst_var (v : string) (repl : Ir.expr) (ss : Ir.stmt list) :
    Ir.stmt list =
  let expr = function Ir.Var x when x = v -> repl | e -> e in
  List.map (map_stmt ~expr) ss

(** Replace whole statements: [f s = Some repl] splices [repl] in place of
    [s]; [None] descends into [s]'s children. *)
let rec expand_stmts (f : Ir.stmt -> Ir.stmt list option)
    (ss : Ir.stmt list) : Ir.stmt list =
  List.concat_map
    (fun s ->
      match f s with
      | Some repl -> repl
      | None ->
          [
            (match s with
            | Ir.SIf (c, a, b) ->
                Ir.SIf (c, expand_stmts f a, expand_stmts f b)
            | Ir.SWhile (c, b) -> Ir.SWhile (c, expand_stmts f b)
            | Ir.SFor (v, lo, hi, b) ->
                Ir.SFor (v, lo, hi, expand_stmts f b)
            | Ir.SParFor p ->
                Ir.SParFor
                  { p with Ir.pf_body = expand_stmts f p.Ir.pf_body }
            | Ir.SInlineBlock (n, b) ->
                Ir.SInlineBlock (n, expand_stmts f b)
            | s -> s);
          ])
    ss

let expr_vars (e : Ir.expr) : string list =
  let acc = ref [] in
  Ir.iter_expr (function Ir.Var v -> acc := v :: !acc | _ -> ()) e;
  !acc

(** Every identifier mentioned by the statements (variables, declarations,
    loop indices) — the conservative footprint used by fission/fusion. *)
let names_of (ss : Ir.stmt list) : (string, unit) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  let add v = Hashtbl.replace tbl v () in
  let stmt = function
    | Ir.SDecl (v, _, _) -> add v
    | Ir.SAssign (Ir.LVar v, _) -> add v
    | Ir.SAssign (Ir.LStatic (c, f), _) -> add (c ^ "." ^ f)
    | Ir.SFor (v, _, _, _) -> add v
    | Ir.SParFor p -> add p.Ir.pf_var
    | Ir.SReduce r -> add r.Ir.rd_dst
    | Ir.SInlineBlock (n, _) -> add n
    | _ -> ()
  in
  let expr = function Ir.Var v -> add v | _ -> () in
  List.iter (Ir.iter_stmt ~stmt ~expr) ss;
  tbl

(** Names written by the statements (assignment targets, store bases,
    declarations, loop indices). *)
let written_of (ss : Ir.stmt list) : (string, unit) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  let add v = Hashtbl.replace tbl v () in
  let stmt = function
    | Ir.SDecl (v, _, _) -> add v
    | Ir.SAssign (Ir.LVar v, _) -> add v
    | Ir.SAssign (Ir.LStatic (c, f), _) -> add (c ^ "." ^ f)
    | Ir.SArrStore (Ir.Var v, _, _) -> add v
    | Ir.SArrStore _ -> ()
    | Ir.SFor (v, _, _, _) -> add v
    | Ir.SParFor p -> add p.Ir.pf_var
    | Ir.SReduce r -> add r.Ir.rd_dst
    | _ -> ()
  in
  List.iter (Ir.iter_stmt ~stmt ~expr:(fun _ -> ())) ss;
  tbl

let disjoint a b =
  not (Hashtbl.fold (fun k () acc -> acc || Hashtbl.mem b k) a false)

let used_names (k : Kernel.kernel) : (string, unit) Hashtbl.t =
  let tbl = names_of k.Kernel.k_body in
  List.iter (fun (p, _) -> Hashtbl.replace tbl p ()) k.Kernel.k_params;
  tbl

let fresh tbl base =
  if not (Hashtbl.mem tbl base) then begin
    Hashtbl.add tbl base ();
    base
  end
  else
    let rec go i =
      let c = Printf.sprintf "%s%d" base i in
      if Hashtbl.mem tbl c then go (i + 1)
      else begin
        Hashtbl.add tbl c ();
        c
      end
    in
    go 0

(** Rewrite the first site in depth-first preorder: [f] sees each
    statement suffix and may replace it wholesale (which lets a rewrite
    consume more than one adjacent statement, as fusion does). *)
let rec rewrite_first (f : Ir.stmt list -> Ir.stmt list option)
    (ss : Ir.stmt list) : Ir.stmt list option =
  match f ss with
  | Some ss' -> Some ss'
  | None -> (
      match ss with
      | [] -> None
      | s :: rest -> (
          match rewrite_children f s with
          | Some s' -> Some (s' :: rest)
          | None -> Option.map (fun r -> s :: r) (rewrite_first f rest)))

and rewrite_children f (s : Ir.stmt) : Ir.stmt option =
  match s with
  | Ir.SIf (c, a, b) -> (
      match rewrite_first f a with
      | Some a' -> Some (Ir.SIf (c, a', b))
      | None -> Option.map (fun b' -> Ir.SIf (c, a, b')) (rewrite_first f b)
      )
  | Ir.SWhile (c, b) ->
      Option.map (fun b' -> Ir.SWhile (c, b')) (rewrite_first f b)
  | Ir.SFor (v, lo, hi, b) ->
      Option.map (fun b' -> Ir.SFor (v, lo, hi, b')) (rewrite_first f b)
  | Ir.SParFor p ->
      Option.map
        (fun b' -> Ir.SParFor { p with Ir.pf_body = b' })
        (rewrite_first f p.Ir.pf_body)
  | Ir.SInlineBlock (n, b) ->
      Option.map (fun b' -> Ir.SInlineBlock (n, b')) (rewrite_first f b)
  | _ -> None

let with_body (st : state) (body : Ir.stmt list) : state =
  { st with st_kernel = { st.st_kernel with Kernel.k_body = body } }

(** Build a structural step whose site discovery and transformation share
    one function: [rw] rewrites the first matching suffix or returns
    [None].  [diagnose] explains a failed match for {!step.legality_check}
    (it may inspect the last failure recorded by [rw]). *)
let structural ~name ~(site : state -> bool)
    ~(attempt : state -> (Ir.stmt list, string) result) : step =
  {
    name;
    applicable = site;
    legality_check =
      (fun st ->
        if not (site st) then Error "no matching site"
        else Result.map (fun _ -> ()) (attempt st));
    apply =
      (fun st ->
        match attempt st with
        | Ok body -> with_body st body
        | Error m -> raise (Illegal (name ^ ": " ^ m)));
  }

let exists_stmt (p : Ir.stmt -> bool) (ss : Ir.stmt list) : bool =
  let found = ref false in
  List.iter
    (Ir.iter_stmt
       ~stmt:(fun s -> if p s then found := true)
       ~expr:(fun _ -> ()))
    ss;
  !found

(* ------------------------------------------------------------------ *)
(* tile:T — strip-mine an exactly divisible counted loop               *)
(* ------------------------------------------------------------------ *)

let c0 = Ir.Const (Ir.CInt 0)
let ci n = Ir.Const (Ir.CInt n)

let tileable t = function
  | Ir.SFor (_, Ir.Const (Ir.CInt 0), Ir.Const (Ir.CInt n), _) ->
      n > t && n mod t = 0
  | _ -> false

(** [tile t] rewrites the first counted loop [for v in [0, n)] with
    [t | n] into [for vt in [0, n/t) for vv in [0, t)] and substitutes
    [vt*t + vv] for [v].  Exact divisibility keeps the transformation
    guard-free and the iteration order identical, so it is bit-exact. *)
let tile (t : int) : step =
  let name = Printf.sprintf "tile:%d" t in
  structural ~name
    ~site:(fun st -> exists_stmt (tileable t) st.st_kernel.Kernel.k_body)
    ~attempt:(fun st ->
      let names = used_names st.st_kernel in
      let f = function
        | Ir.SFor (v, Ir.Const (Ir.CInt 0), Ir.Const (Ir.CInt n), body)
          :: rest
          when n > t && n mod t = 0 ->
            let vt = fresh names (v ^ "t") in
            let vv = fresh names (v ^ "v") in
            let idx =
              Ir.Bin
                ( Ast.Add,
                  Ir.SInt,
                  Ir.Bin (Ast.Mul, Ir.SInt, Ir.Var vt, ci t),
                  Ir.Var vv )
            in
            Some
              (Ir.SFor
                 ( vt,
                   c0,
                   ci (n / t),
                   [ Ir.SFor (vv, c0, ci t, subst_var v idx body) ] )
              :: rest)
        | _ -> None
      in
      match rewrite_first f st.st_kernel.Kernel.k_body with
      | Some body -> Ok body
      | None -> Error "no counted loop with a divisible trip count")

(* ------------------------------------------------------------------ *)
(* interchange — swap a perfectly nested sequential loop pair          *)
(* ------------------------------------------------------------------ *)

(** A loop body is safe to reorder iteration-wise iff every statement is a
    pure computation or an associative accumulation ([x op= e] /
    [a[i] op= e] with [op] in add, mul), the accumulated location is read
    only inside its own accumulation, and control flow stays structured. *)
let reorderable_body (body : Ir.stmt list) : (unit, string) result =
  let accum : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  (* pass 1: statement shapes; collect accumulation targets *)
  let rec shape s =
    match s with
    | Ir.SDecl (_, Ir.TScalar _, _) | Ir.SExpr _ -> Ok ()
    | Ir.SDecl (_, _, _) -> Error "array declaration in reordered loop"
    | Ir.SAssign (Ir.LVar v, Ir.Bin ((Ast.Add | Ast.Mul), _, Ir.Var v', e))
      when v = v' ->
        if List.mem v (expr_vars e) then
          Error "accumulator read inside its own addend"
        else begin
          Hashtbl.replace accum v ();
          Ok ()
        end
    | Ir.SAssign (Ir.LVar v, Ir.Bin (Ast.Add, _, e, Ir.Var v')) when v = v'
      ->
        if List.mem v (expr_vars e) then
          Error "accumulator read inside its own addend"
        else begin
          Hashtbl.replace accum v ();
          Ok ()
        end
    | Ir.SAssign _ -> Error "assignment is not an accumulation"
    | Ir.SArrStore
        ( Ir.Var b,
          idx,
          Ir.Bin ((Ast.Add | Ast.Mul), _, Ir.Load (Ir.Var b', idx'), e) )
      when b = b' && idx = idx' ->
        if
          List.mem b (expr_vars e)
          || List.exists (fun i -> List.mem b (expr_vars i)) idx
        then Error "accumulated array read outside the accumulation"
        else begin
          Hashtbl.replace accum b ();
          Ok ()
        end
    | Ir.SArrStore _ -> Error "store is not an accumulation"
    | Ir.SIf (_, a, b) -> all (a @ b)
    | Ir.SFor (_, _, _, b) -> all b
    | Ir.SBreak | Ir.SContinue | Ir.SReturn _ ->
        Error "unstructured control flow"
    | Ir.SWhile _ -> Error "data-dependent loop"
    | Ir.SParFor _ | Ir.SReduce _ | Ir.SInlineBlock _ | Ir.SFinish _ ->
        Error "parallel construct inside reordered loop"
  and all ss =
    List.fold_left
      (fun acc s -> Result.bind acc (fun () -> shape s))
      (Ok ()) ss
  in
  Result.bind (all body) (fun () ->
      (* pass 2: accumulated names must not feed any other expression
         (conditions, bounds, declarations, other accumulations) *)
      let bad = ref None in
      let check_no_accum e =
        List.iter
          (fun v ->
            if Hashtbl.mem accum v && !bad = None then
              bad := Some ("accumulator " ^ v ^ " read elsewhere"))
          (expr_vars e)
      in
      let rec walk s =
        match s with
        | Ir.SDecl (_, _, init) -> Option.iter check_no_accum init
        | Ir.SAssign (Ir.LVar _, Ir.Bin (_, _, Ir.Var _, e))
        | Ir.SAssign (Ir.LVar _, Ir.Bin (_, _, e, Ir.Var _)) ->
            (* pass 1 admitted only accumulations here: check the addend *)
            check_no_accum e
        | Ir.SAssign (_, e) -> check_no_accum e
        | Ir.SArrStore (_, idx, Ir.Bin (_, _, Ir.Load (_, _), e)) ->
            List.iter check_no_accum idx;
            check_no_accum e
        | Ir.SArrStore (_, idx, v) ->
            List.iter check_no_accum idx;
            check_no_accum v
        | Ir.SIf (c, a, b) ->
            check_no_accum c;
            List.iter walk a;
            List.iter walk b
        | Ir.SFor (_, lo, hi, b) ->
            check_no_accum lo;
            check_no_accum hi;
            List.iter walk b
        | Ir.SExpr e -> check_no_accum e
        | _ -> ()
      in
      List.iter walk body;
      match !bad with None -> Ok () | Some m -> Error m)

let perfect_nest = function
  | Ir.SFor (_, _, _, [ Ir.SFor _ ]) -> true
  | _ -> false

(** Swap the first perfectly nested pair of sequential loops.  Legal when
    the inner bounds are invariant in the outer index and the shared body
    is a pure-or-accumulation region; FP accumulations are reassociated,
    so results match only up to rounding. *)
let interchange : step =
  structural ~name:"interchange"
    ~site:(fun st -> exists_stmt perfect_nest st.st_kernel.Kernel.k_body)
    ~attempt:(fun st ->
      let err = ref "no perfectly nested loop pair" in
      let f = function
        | Ir.SFor (vo, lo_o, hi_o, [ Ir.SFor (vi, lo_i, hi_i, body) ])
          :: rest ->
            if List.mem vo (expr_vars lo_i) || List.mem vo (expr_vars hi_i)
            then begin
              err := "inner bounds depend on the outer index";
              None
            end
            else (
              match reorderable_body body with
              | Error m ->
                  err := m;
                  None
              | Ok () ->
                  Some
                    (Ir.SFor
                       (vi, lo_i, hi_i, [ Ir.SFor (vo, lo_o, hi_o, body) ])
                    :: rest))
        | _ -> None
      in
      match rewrite_first f st.st_kernel.Kernel.k_body with
      | Some body -> Ok body
      | None -> Error !err)

(* ------------------------------------------------------------------ *)
(* unroll — fully unroll a short constant-trip loop                    *)
(* ------------------------------------------------------------------ *)

let max_unroll_trips = 16

let unrollable = function
  | Ir.SFor (_, Ir.Const (Ir.CInt lo), Ir.Const (Ir.CInt hi), _) ->
      hi - lo >= 2 && hi - lo <= max_unroll_trips
  | _ -> false

(* a break/continue at this loop's level would, once unrolled, bind to an
   enclosing loop instead — reject those bodies *)
let rec has_loose_jump (ss : Ir.stmt list) : bool =
  List.exists
    (fun s ->
      match s with
      | Ir.SBreak | Ir.SContinue -> true
      | Ir.SIf (_, a, b) -> has_loose_jump a || has_loose_jump b
      | Ir.SInlineBlock (_, b) -> has_loose_jump b
      | _ -> false)
    ss

(** Rename every declaration in an unrolled copy so splicing copies into
    one scope cannot collide. *)
let rename_decls (names : (string, unit) Hashtbl.t) (ss : Ir.stmt list) :
    Ir.stmt list =
  let renames = Hashtbl.create 4 in
  List.iter
    (Ir.iter_stmt
       ~stmt:(fun s ->
         match s with
         | Ir.SDecl (v, _, _) ->
             if not (Hashtbl.mem renames v) then
               Hashtbl.replace renames v (fresh names (v ^ "u"))
         | _ -> ())
       ~expr:(fun _ -> ()))
    ss;
  if Hashtbl.length renames = 0 then ss
  else
    let rn v =
      match Hashtbl.find_opt renames v with Some v' -> v' | None -> v
    in
    let expr = function Ir.Var v -> Ir.Var (rn v) | e -> e in
    let stmt = function
      | Ir.SDecl (v, t, init) -> Ir.SDecl (rn v, t, init)
      | Ir.SAssign (Ir.LVar v, e) -> Ir.SAssign (Ir.LVar (rn v), e)
      | s -> s
    in
    List.map (map_stmt ~expr ~stmt) ss

(** Fully unroll the first counted loop with 2..16 constant trips,
    substituting the literal index into each copy — which turns affine
    indices like [jt*4 + jj] into statically-known lanes the vectorizer
    can use.  Bit-exact. *)
let unroll : step =
  structural ~name:"unroll"
    ~site:(fun st -> exists_stmt unrollable st.st_kernel.Kernel.k_body)
    ~attempt:(fun st ->
      let err = ref "no short constant-trip loop" in
      let names = used_names st.st_kernel in
      let f = function
        | Ir.SFor (v, Ir.Const (Ir.CInt lo), Ir.Const (Ir.CInt hi), body)
          :: rest
          when hi - lo >= 2 && hi - lo <= max_unroll_trips ->
            if has_loose_jump body then begin
              err := "break/continue would re-bind to an enclosing loop";
              None
            end
            else
              let copies =
                List.concat
                  (List.init (hi - lo) (fun i ->
                       rename_decls names (subst_var v (ci (lo + i)) body)))
              in
              Some (copies @ rest)
        | _ -> None
      in
      match rewrite_first f st.st_kernel.Kernel.k_body with
      | Some body -> Ok body
      | None -> Error !err)

(* ------------------------------------------------------------------ *)
(* fission / fusion                                                    *)
(* ------------------------------------------------------------------ *)

let split_point (v : string) (body : Ir.stmt list) : int option =
  let n = List.length body in
  let rec try_at p =
    if p >= n then None
    else
      let first = List.filteri (fun i _ -> i < p) body in
      let second = List.filteri (fun i _ -> i >= p) body in
      let na = names_of first and nb = names_of second in
      Hashtbl.remove na v;
      Hashtbl.remove nb v;
      if disjoint na nb then Some p else try_at (p + 1)
  in
  if n < 2 then None else try_at 1

let fissionable = function
  | Ir.SFor (v, lo, hi, body) ->
      split_point v body <> None
      && disjoint (written_of body) (names_of [ Ir.SExpr lo; Ir.SExpr hi ])
  | _ -> false

(** Distribute the first loop whose body splits into halves with disjoint
    footprints.  Disjointness makes the halves independent, so running all
    iterations of one before the other is bit-exact. *)
let fission : step =
  structural ~name:"fission"
    ~site:(fun st -> exists_stmt fissionable st.st_kernel.Kernel.k_body)
    ~attempt:(fun st ->
      let f = function
        | (Ir.SFor (v, lo, hi, body) as s) :: rest when fissionable s -> (
            match split_point v body with
            | None -> None
            | Some p ->
                let first = List.filteri (fun i _ -> i < p) body in
                let second = List.filteri (fun i _ -> i >= p) body in
                Some
                  (Ir.SFor (v, lo, hi, first)
                  :: Ir.SFor (v, lo, hi, second)
                  :: rest))
        | _ -> None
      in
      match rewrite_first f st.st_kernel.Kernel.k_body with
      | Some body -> Ok body
      | None -> Error "no loop with an independent split point")

let fusable s1 s2 =
  match (s1, s2) with
  | Ir.SFor (v1, lo1, hi1, b1), Ir.SFor (v2, lo2, hi2, b2) ->
      lo1 = lo2 && hi1 = hi2
      && (let na = names_of b1 and nb = names_of b2 in
          Hashtbl.remove na v1;
          Hashtbl.remove nb v2;
          disjoint na nb)
      && disjoint
           (written_of (b1 @ b2))
           (names_of [ Ir.SExpr lo1; Ir.SExpr hi1 ])
  | _ -> false

let fuse_rw = function
  | (Ir.SFor (v1, lo1, hi1, b1) as s1)
    :: (Ir.SFor (v2, _, _, b2) as s2)
    :: rest
    when fusable s1 s2 ->
      Some (Ir.SFor (v1, lo1, hi1, b1 @ subst_var v2 (Ir.Var v1) b2) :: rest)
  | _ -> None

(** Merge the first two adjacent loops with identical bounds and disjoint
    body footprints.  Bit-exact under disjointness. *)
let fusion : step =
  structural ~name:"fusion"
    ~site:(fun st -> rewrite_first fuse_rw st.st_kernel.Kernel.k_body <> None)
    ~attempt:(fun st ->
      match rewrite_first fuse_rw st.st_kernel.Kernel.k_body with
      | Some body -> Ok body
      | None -> Error "no adjacent fusable loop pair")

(* ------------------------------------------------------------------ *)
(* scalarize / soa — storage-layout rewrites on kernel-local arrays    *)
(* ------------------------------------------------------------------ *)

(** Occurrence discipline for layout rewrites, by counting: [total] is
    every appearance of [Var name]; [clean] counts the appearances inside
    an access shape the rewrite can translate.  The two are equal exactly
    when the array never escapes (no views, no aliasing, no returns, no
    dynamic indices). *)
let usage_clean (k : Kernel.kernel) (name : string)
    ~(clean_load : Ir.expr -> bool) ~(clean_store : Ir.stmt -> bool) : bool
    =
  let total = ref 0 and clean = ref 0 in
  let expr e =
    (match e with Ir.Var v when v = name -> incr total | _ -> ());
    match e with
    | Ir.Load (Ir.Var v, _) when v = name ->
        if clean_load e then incr clean
    | _ -> ()
  in
  let stmt s =
    match s with
    | Ir.SArrStore (Ir.Var v, _, _) when v = name ->
        if clean_store s then incr clean
    | Ir.SAssign (Ir.LVar v, _) when v = name ->
        (* rebinding the array variable: not translatable *)
        incr total
    | _ -> ()
  in
  List.iter (Ir.iter_stmt ~stmt ~expr) k.Kernel.k_body;
  !total > 0 && !total = !clean

let all_const_int idx =
  List.for_all (function Ir.Const (Ir.CInt _) -> true | _ -> false) idx

let zero_const = function
  | Ir.SInt | Ir.SByte | Ir.SChar -> Ir.Const (Ir.CInt 0)
  | Ir.SLong -> Ir.Const (Ir.CLong 0L)
  | Ir.SFloat -> Ir.Const (Ir.CFloat 0.0)
  | Ir.SDouble -> Ir.Const (Ir.CDouble 0.0)
  | Ir.SBool -> Ir.Const (Ir.CBool false)

let max_scalarize_elems = 8

let in_range i n = i >= 0 && i < n

(** First kernel-local 1-D array of at most {!max_scalarize_elems}
    elements whose every access is a constant index.  The element count
    comes from the declared dimension when it is fixed, or from a
    constant [new] size (lowering leaves local allocations dynamically
    dimensioned even when the size is a literal). *)
let scalarize_candidate (k : Kernel.kernel) :
    (string * Ir.aty * Ir.expr option * int) option =
  let found = ref None in
  let consider v aty init n =
    if
      !found = None
      && usage_clean k v
           ~clean_load:(function
             | Ir.Load (_, [ Ir.Const (Ir.CInt i) ]) -> in_range i n
             | _ -> false)
           ~clean_store:(function
             | Ir.SArrStore (_, [ Ir.Const (Ir.CInt i) ], _) ->
                 in_range i n
             | _ -> false)
    then found := Some (v, aty, init, n)
  in
  List.iter
    (Ir.iter_stmt
       ~stmt:(fun s ->
         match s with
         | Ir.SDecl (v, Ir.TArr aty, init) -> (
             match (aty.Ir.dims, init) with
             | ( [ Ir.DFixed n ],
                 (Some (Ir.NewArr _) | Some (Ir.ArrLit _)) )
               when n >= 1 && n <= max_scalarize_elems ->
                 consider v aty init n
             | [ Ir.DDyn ], Some (Ir.NewArr (_, [ Ir.Const (Ir.CInt n) ]))
               when n >= 1 && n <= max_scalarize_elems ->
                 consider v aty init n
             | _ -> ())
         | _ -> ())
       ~expr:(fun _ -> ()))
    k.Kernel.k_body;
  !found

(** Replace a small constant-indexed local array by one scalar variable
    per element.  Bit-exact. *)
let scalarize : step =
  let attempt (st : state) : (Ir.stmt list, string) result =
    match scalarize_candidate st.st_kernel with
    | None -> Error "no small constant-indexed local array"
    | Some (v, aty, init, n) ->
        let names = used_names st.st_kernel in
        let cells =
          Array.init n (fun i -> fresh names (Printf.sprintf "%s_%d" v i))
        in
        let elem = aty.Ir.elem in
        let inits =
          match init with
          | Some (Ir.ArrLit (_, es)) when List.length es = n ->
              Array.of_list es
          | _ -> Array.init n (fun _ -> zero_const elem)
        in
        let expr = function
          | Ir.Load (Ir.Var x, [ Ir.Const (Ir.CInt i) ])
            when x = v && in_range i n ->
              Ir.Var cells.(i)
          | e -> e
        in
        let stmt = function
          | Ir.SArrStore (Ir.Var x, [ Ir.Const (Ir.CInt i) ], e)
            when x = v && in_range i n ->
              Ir.SAssign (Ir.LVar cells.(i), e)
          | s -> s
        in
        let body =
          List.map (map_stmt ~expr ~stmt) st.st_kernel.Kernel.k_body
        in
        (* splice the per-cell declarations where the array was declared *)
        let body =
          expand_stmts
            (function
              | Ir.SDecl (x, Ir.TArr _, _) when x = v ->
                  Some
                    (Array.to_list
                       (Array.mapi
                          (fun i cell ->
                            Ir.SDecl (cell, Ir.TScalar elem, Some inits.(i)))
                          cells))
              | _ -> None)
            body
        in
        Ok body
  in
  structural ~name:"scalarize"
    ~site:(fun st -> scalarize_candidate st.st_kernel <> None)
    ~attempt

(** First kernel-local 2-D array with a small fixed innermost dimension
    whose every access is full-rank with a constant last index. *)
let soa_candidate (k : Kernel.kernel) :
    (string * Ir.aty * Ir.expr list) option =
  let found = ref None in
  let consider v aty sizes f =
    if
      !found = None
      && usage_clean k v
           ~clean_load:(function
             | Ir.Load (_, [ _; Ir.Const (Ir.CInt i) ]) -> in_range i f
             | _ -> false)
           ~clean_store:(function
             | Ir.SArrStore (_, [ _; Ir.Const (Ir.CInt i) ], _) ->
                 in_range i f
             | _ -> false)
    then found := Some (v, aty, sizes)
  in
  List.iter
    (Ir.iter_stmt
       ~stmt:(fun s ->
         match s with
         | Ir.SDecl (v, Ir.TArr aty, Some (Ir.NewArr (_, sizes))) -> (
             match aty.Ir.dims with
             | [ _; Ir.DFixed f ] when f >= 2 && f <= 4 ->
                 consider v aty sizes f
             | _ -> ())
         | _ -> ())
       ~expr:(fun _ -> ()))
    k.Kernel.k_body;
  !found

(** Split an array-of-short-rows into one 1-D array per lane (AoS→SoA).
    Bit-exact: the same scalar cells exist, only the addressing differs. *)
let soa : step =
  let attempt (st : state) : (Ir.stmt list, string) result =
    match soa_candidate st.st_kernel with
    | None -> Error "no fixed-innermost local array with constant lanes"
    | Some (v, aty, sizes) ->
        let f =
          match aty.Ir.dims with
          | [ _; Ir.DFixed f ] -> f
          | _ -> assert false
        in
        let d0 = List.hd aty.Ir.dims in
        let names = used_names st.st_kernel in
        let lanes =
          Array.init f (fun i -> fresh names (Printf.sprintf "%s_%d" v i))
        in
        let lane_aty = { aty with Ir.dims = [ d0 ] } in
        let expr = function
          | Ir.Load (Ir.Var x, [ lead; Ir.Const (Ir.CInt i) ])
            when x = v && in_range i f ->
              Ir.Load (Ir.Var lanes.(i), [ lead ])
          | e -> e
        in
        let stmt = function
          | Ir.SArrStore (Ir.Var x, [ lead; Ir.Const (Ir.CInt i) ], e)
            when x = v && in_range i f ->
              Ir.SArrStore (Ir.Var lanes.(i), [ lead ], e)
          | s -> s
        in
        let body =
          List.map (map_stmt ~expr ~stmt) st.st_kernel.Kernel.k_body
        in
        let body =
          expand_stmts
            (function
              | Ir.SDecl (x, Ir.TArr _, _) when x = v ->
                  Some
                    (Array.to_list
                       (Array.map
                          (fun lane ->
                            Ir.SDecl
                              ( lane,
                                Ir.TArr lane_aty,
                                Some (Ir.NewArr (lane_aty, sizes)) ))
                          lanes))
              | _ -> None)
            body
        in
        Ok body
  in
  structural ~name:"soa"
    ~site:(fun st -> soa_candidate st.st_kernel <> None)
    ~attempt

(* ------------------------------------------------------------------ *)
(* Placement rewrites — the Fig 8 space as catalog steps               *)
(* ------------------------------------------------------------------ *)

(** A placement step toggles one optimizer flag.  It is [applicable] only
    when the toggle changes the decision table for this kernel (so the
    search never wastes beam slots on no-ops); replaying a stored sequence
    bypasses applicability and just applies, which is always legal — the
    per-array legality lives in {!Lime_gpu.Memopt.decide}. *)
let placement_step name ~(get : Memopt.config -> bool)
    ~(set : Memopt.config -> Memopt.config) : step =
  {
    name;
    applicable =
      (fun st ->
        (not (get st.st_config))
        && Memopt.placements
             (Memopt.optimize ~affine_lanes:true (set st.st_config)
                st.st_kernel)
           <> Memopt.placements
                (Memopt.optimize ~affine_lanes:true st.st_config
                   st.st_kernel));
    legality_check = (fun _ -> Ok ());
    apply = (fun st -> { st with st_config = set st.st_config });
  }

let step_local =
  placement_step "local"
    ~get:(fun c -> c.Memopt.use_local)
    ~set:(fun c -> { c with Memopt.use_local = true })

let step_pad =
  placement_step "pad"
    ~get:(fun c -> c.Memopt.pad_local)
    ~set:(fun c -> { c with Memopt.pad_local = true })

let step_constant =
  placement_step "constant"
    ~get:(fun c -> c.Memopt.use_constant)
    ~set:(fun c -> { c with Memopt.use_constant = true })

let step_image =
  placement_step "image"
    ~get:(fun c -> c.Memopt.use_image)
    ~set:(fun c -> { c with Memopt.use_image = true })

let step_vec =
  placement_step "vec"
    ~get:(fun c -> c.Memopt.vectorize)
    ~set:(fun c -> { c with Memopt.vectorize = true })

(* ------------------------------------------------------------------ *)
(* Catalog, names, sequences                                           *)
(* ------------------------------------------------------------------ *)

let catalog : step list =
  [
    tile 2;
    tile 4;
    tile 8;
    interchange;
    unroll;
    fission;
    fusion;
    scalarize;
    soa;
    step_local;
    step_pad;
    step_constant;
    step_image;
    step_vec;
  ]

let of_name (name : string) : step option =
  match String.index_opt name ':' with
  | Some i when String.sub name 0 i = "tile" -> (
      match
        int_of_string_opt
          (String.sub name (i + 1) (String.length name - i - 1))
      with
      | Some t when t >= 2 -> Some (tile t)
      | _ -> None)
  | _ -> List.find_opt (fun s -> s.name = name) catalog

(** Legality-checked application (the replay path): the step's
    applicability heuristic is bypassed, its soundness check is not. *)
let apply_step (step : step) (st : state) : (state, string) result =
  match step.legality_check st with
  | Error m -> Error (step.name ^ ": " ^ m)
  | Ok () -> ( try Ok (step.apply st) with Illegal m -> Error m)

let apply_sequence (st : state) (names : string list) :
    (state, string) result =
  List.fold_left
    (fun acc n ->
      Result.bind acc (fun st ->
          match of_name n with
          | None -> Error (Printf.sprintf "unknown rewrite %S" n)
          | Some step -> apply_step step st))
    (Ok st) names

let sequence_to_string (names : string list) : string =
  String.concat ";" names

let sequence_of_string (s : string) : string list =
  String.split_on_char ';' s
  |> List.map String.trim
  |> List.filter (fun x -> x <> "")

(** The eight bars of Fig 8 as canned rewrite sequences over
    {!Lime_gpu.Memopt.config_global}: applying each yields exactly the
    corresponding {!Lime_gpu.Memopt.fig8_configs} entry, which is what
    keeps the paper-fidelity experiments unchanged. *)
let fig8_sequences : (string * string list) list =
  [
    ("Global", []);
    ("Global+Vector", [ "vec" ]);
    ("Local", [ "local" ]);
    ("Local+Conflicts removed", [ "local"; "pad" ]);
    ("Local+Conflicts removed+Vector", [ "local"; "pad"; "vec" ]);
    ("Constant", [ "constant" ]);
    ("Constant+Vector", [ "constant"; "vec" ]);
    ("Texture", [ "image" ]);
  ]
