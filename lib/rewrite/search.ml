(** Beam search over the rewrite catalog.

    The search explores sequences of {!Rewrite.step}s from
    {!Rewrite.catalog}, scoring each resulting [(kernel, config)] state
    with the analytic device model ({!Gpusim.Model.kernel_time_ex} over a
    {!Gpusim.Profile.t} computed with invariant hoisting and affine-lane
    recognition enabled).  A beam of the [width] best states advances up
    to [depth] levels; children are produced by every applicable, legal
    catalog step and deduplicated structurally, so permutations of
    commuting placements cost one evaluation, not many.

    The initial population is the empty schedule plus the eight canned
    Fig 8 sequences of {!Rewrite.fig8_sequences}.  Seeding guarantees the
    returned best is never worse under the cost model than the best Fig 8
    configuration — beam search only ever improves on the paper's sweep.

    Everything is deterministic: the catalog order is fixed, candidates
    sort by (modeled time, sequence length, sequence names), and no
    randomness enters anywhere, so a stored winning sequence replays to
    the same state on a cache-warm compile. *)

module Ir = Lime_ir.Ir
module Kernel = Lime_gpu.Kernel
module Memopt = Lime_gpu.Memopt
module Device = Gpusim.Device
module Model = Gpusim.Model
module Profile = Gpusim.Profile
module Counters = Gpusim.Counters
module Autotune = Gpusim.Autotune

type candidate = {
  sc_sequence : string list;  (** rewrite names, in application order *)
  sc_state : Rewrite.state;
  sc_time_s : float;  (** modeled kernel time on the search device *)
  sc_breakdown : Model.breakdown;
  sc_counters : Counters.t;
}

type outcome = {
  so_best : candidate;
  so_baseline : candidate;  (** the empty schedule *)
  so_fig8_best : string * candidate;  (** best canned Fig 8 sequence *)
  so_evals : int;  (** cost-model evaluations spent *)
  so_depth_reached : int;  (** beam levels actually expanded *)
}

(* ------------------------------------------------------------------ *)
(* Observers (keyed, composing — same discipline as Pipeline)          *)
(* ------------------------------------------------------------------ *)

type event =
  | EBegin of { kernel : string; device : string; width : int; depth : int }
  | ELevel of {
      level : int;
      frontier : int;  (** beam size after pruning *)
      evals : int;  (** cumulative evaluations *)
      best_time_s : float;
      best_sequence : string list;
    }
  | EEnd of {
      evals : int;
      best_time_s : float;
      best_sequence : string list;
      improved : bool;  (** beam beat the best Fig 8 configuration *)
    }
  | EReplay of {
      kernel : string;
      sequence : string list;
      ok : bool;  (** the stored schedule replayed legally *)
    }

let hooks_mu = Mutex.create ()

let locked f =
  Mutex.lock hooks_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock hooks_mu) f

let observers : (string * (event -> unit)) list ref = ref []

let on_search ~key f =
  locked (fun () ->
      observers := (key, f) :: List.remove_assoc key !observers)

let remove_search_observer key =
  locked (fun () -> observers := List.remove_assoc key !observers)

let emit ev =
  List.iter (fun (_, f) -> f ev) (locked (fun () -> !observers))

(* ------------------------------------------------------------------ *)
(* Scoring                                                             *)
(* ------------------------------------------------------------------ *)

(** Modeled time of one rewrite state: run the memory optimizer on the
    state's config, profile the (possibly restructured) kernel with the
    backend-compiler effects the rewrites rely on (invariant hoisting,
    affine lanes), and price it on the device.  Mirrors
    {!Gpusim.Autotune.time_config_ex} except for the two profiler
    flags. *)
let score (device : Device.t) (st : Rewrite.state)
    ~(shapes : (string * int array) list)
    ~(scalars : (string * float) list) : float * Model.breakdown * Counters.t
    =
  let k = st.Rewrite.st_kernel in
  let decisions = Memopt.optimize ~affine_lanes:true st.Rewrite.st_config k in
  let prof =
    Profile.profile ~hoist_invariant:true ~affine_lanes:true k decisions
      ~shapes ~scalars
  in
  let out_shape =
    match k.Kernel.k_ret with
    | Ir.TArr aty ->
        Some
          (Array.of_list
             (List.map
                (function
                  | Ir.DFixed n -> n
                  | Ir.DDyn -> int_of_float prof.Profile.p_last_parfor_items)
                aty.Ir.dims))
    | _ -> None
  in
  let bd, ctr =
    Model.kernel_time_ex device prof
      (Autotune.bindings_of k decisions ~shapes ~out_shape)
  in
  (bd.Model.bd_total_s, bd, ctr)

(** Structural signature of a state: the rewritten body plus the placement
    table it induces.  Two states with equal signatures are
    indistinguishable to the cost model, so the search keeps only the
    first (shortest, earliest) sequence reaching each. *)
let signature (st : Rewrite.state) : string =
  let body =
    String.concat "\n"
      (List.map (Ir.stmt_str ~ind:0) st.Rewrite.st_kernel.Kernel.k_body)
  in
  let placements =
    Memopt.describe
      (Memopt.optimize ~affine_lanes:true st.Rewrite.st_config
         st.Rewrite.st_kernel)
  in
  Digest.string (body ^ "\x00" ^ placements)

let cmp_candidate (a : candidate) (b : candidate) : int =
  compare
    (a.sc_time_s, List.length a.sc_sequence, a.sc_sequence)
    (b.sc_time_s, List.length b.sc_sequence, b.sc_sequence)

(* ------------------------------------------------------------------ *)
(* Search                                                              *)
(* ------------------------------------------------------------------ *)

let default_width = 8
let default_depth = 5

(** [search device k ~shapes ~scalars] beam-searches a rewrite schedule
    for [k] launched with the given argument shapes.  [width] states
    survive each level; at most [depth] rewrites are chained. *)
let search ?(width = default_width) ?(depth = default_depth)
    (device : Device.t) (k : Kernel.kernel)
    ~(shapes : (string * int array) list)
    ~(scalars : (string * float) list) : outcome =
  let width = max 1 width and depth = max 0 depth in
  emit
    (EBegin
       { kernel = k.Kernel.k_name; device = device.Device.name; width;
         depth });
  let evals = ref 0 in
  let evaluate (sequence : string list) (st : Rewrite.state) : candidate =
    incr evals;
    let time_s, bd, ctr = score device st ~shapes ~scalars in
    {
      sc_sequence = sequence;
      sc_state = st;
      sc_time_s = time_s;
      sc_breakdown = bd;
      sc_counters = ctr;
    }
  in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let fresh_state st =
    let s = signature st in
    if Hashtbl.mem seen s then false
    else begin
      Hashtbl.add seen s ();
      true
    end
  in
  let baseline_state = Rewrite.initial k in
  ignore (fresh_state baseline_state);
  let baseline = evaluate [] baseline_state in
  (* Canned Fig 8 sequences seed the beam: the search result can only be
     at least as good as the paper's sweep winner. *)
  let fig8 =
    List.filter_map
      (fun (name, seq) ->
        match Rewrite.apply_sequence baseline_state seq with
        | Error _ -> None
        | Ok st -> Some (name, seq, st))
      Rewrite.fig8_sequences
  in
  let fig8_cands =
    List.map
      (fun (name, seq, st) ->
        if seq = [] then (name, baseline)
        else begin
          ignore (fresh_state st);
          (name, evaluate seq st)
        end)
      fig8
  in
  let fig8_cands =
    match fig8_cands with [] -> [ ("Global", baseline) ] | l -> l
  in
  let fig8_best =
    List.fold_left
      (fun acc (name, c) ->
        match acc with
        | Some (_, best) when cmp_candidate best c <= 0 -> acc
        | _ -> Some (name, c))
      None fig8_cands
    |> Option.get
  in
  let best_ever = ref baseline in
  let consider c = if cmp_candidate c !best_ever < 0 then best_ever := c in
  List.iter (fun (_, c) -> consider c) fig8_cands;
  let prune cands =
    let sorted = List.sort cmp_candidate cands in
    List.filteri (fun i _ -> i < width) sorted
  in
  let frontier = ref (prune (baseline :: List.map snd fig8_cands)) in
  let depth_reached = ref 0 in
  (try
     for level = 1 to depth do
       let children =
         List.concat_map
           (fun (c : candidate) ->
             List.filter_map
               (fun (step : Rewrite.step) ->
                 if not (step.Rewrite.applicable c.sc_state) then None
                 else
                   match step.Rewrite.legality_check c.sc_state with
                   | Error _ -> None
                   | Ok () -> (
                       match step.Rewrite.apply c.sc_state with
                       | exception Rewrite.Illegal _ -> None
                       | st ->
                           if fresh_state st then
                             Some
                               (evaluate
                                  (c.sc_sequence @ [ step.Rewrite.name ])
                                  st)
                           else None))
               Rewrite.catalog)
           !frontier
       in
       if children = [] then raise Exit;
       depth_reached := level;
       List.iter consider children;
       frontier := prune children;
       emit
         (ELevel
            {
              level;
              frontier = List.length !frontier;
              evals = !evals;
              best_time_s = !best_ever.sc_time_s;
              best_sequence = !best_ever.sc_sequence;
            })
     done
   with Exit -> ());
  let best = !best_ever in
  emit
    (EEnd
       {
         evals = !evals;
         best_time_s = best.sc_time_s;
         best_sequence = best.sc_sequence;
         improved = best.sc_time_s < (snd fig8_best).sc_time_s;
       });
  {
    so_best = best;
    so_baseline = baseline;
    so_fig8_best = fig8_best;
    so_evals = !evals;
    so_depth_reached = !depth_reached;
  }

(* ------------------------------------------------------------------ *)
(* Replay and reporting                                                *)
(* ------------------------------------------------------------------ *)

(** Apply a stored schedule (legality-checked, no search) and price the
    result — the cache-warm path: a tunestore hit replays the persisted
    sequence instead of re-searching. *)
let replay (device : Device.t) (k : Kernel.kernel) (sequence : string list)
    ~(shapes : (string * int array) list)
    ~(scalars : (string * float) list) : (candidate, string) result =
  match Rewrite.apply_sequence (Rewrite.initial k) sequence with
  | Error m ->
      emit (EReplay { kernel = k.Kernel.k_name; sequence; ok = false });
      Error m
  | Ok st ->
      emit (EReplay { kernel = k.Kernel.k_name; sequence; ok = true });
      let time_s, bd, ctr = score device st ~shapes ~scalars in
      Ok
        {
          sc_sequence = sequence;
          sc_state = st;
          sc_time_s = time_s;
          sc_breakdown = bd;
          sc_counters = ctr;
        }

let seq_str = function
  | [] -> "(baseline)"
  | seq -> Rewrite.sequence_to_string seq

(** Human-readable account of a search, for [limec --explain]. *)
let explain (o : outcome) : string =
  let b = Buffer.create 256 in
  let f8_name, f8 = o.so_fig8_best in
  Buffer.add_string b
    (Printf.sprintf "baseline           %.3e s  %s\n" o.so_baseline.sc_time_s
       (seq_str o.so_baseline.sc_sequence));
  Buffer.add_string b
    (Printf.sprintf "best fig8          %.3e s  %s  [%s]\n" f8.sc_time_s
       (seq_str f8.sc_sequence) f8_name);
  Buffer.add_string b
    (Printf.sprintf "beam best          %.3e s  %s\n" o.so_best.sc_time_s
       (seq_str o.so_best.sc_sequence));
  Buffer.add_string b
    (Printf.sprintf "speedup vs baseline %.2fx, vs best fig8 %.2fx\n"
       (o.so_baseline.sc_time_s /. o.so_best.sc_time_s)
       (f8.sc_time_s /. o.so_best.sc_time_s));
  Buffer.add_string b
    (Printf.sprintf "%d cost-model evaluations, %d beam levels\n" o.so_evals
       o.so_depth_reached);
  Buffer.contents b
