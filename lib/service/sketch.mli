(** Mergeable streaming quantile sketch with bounded relative error, plus
    rolling multi-resolution windows.

    The sketch is DDSketch-style: values map to logarithmic buckets
    [gamma^(i-1) < v <= gamma^i] with [gamma = (1 + alpha) / (1 - alpha)],
    so any value in bucket [i] is within relative error [alpha] of the
    bucket's midpoint estimate [2 gamma^i / (gamma + 1)].  A quantile query
    locates the bucket holding the target rank and returns that estimate —
    the answer is within [alpha] {e relative} error of the exact sample at
    the same rank, for any stream, any distribution.  Memory is bounded by
    the dynamic range of the data, not the stream length (about 1500
    buckets cover 1ns..10000s at the default 1% accuracy).

    Two sketches with the same [alpha] merge losslessly: the merged bucket
    counts equal those of a sketch fed both streams, so merge is
    associative and commutative — what lets per-interval sub-sketches
    aggregate into windows.

    {b Rank convention}: for [n] samples the quantile [q] targets the
    1-indexed rank [rank_of q n = max 1 (ceil (q * n))]; the exact
    counterpart of [quantile t q] is [sorted.(rank_of q n - 1)].  Tests
    and benches gate sketch-vs-exact agreement with this shared
    convention.

    {b Thread safety}: every operation may be called from any domain; each
    sketch (and each window ring) carries its own mutex, like
    {!Metrics}. *)

type t

val create : ?alpha:float -> unit -> t
(** A fresh sketch.  [alpha] is the relative-error bound (default
    {!default_alpha}); it must be in (0, 0.5).  Values at or below
    {!min_value} (latencies of ~a nanosecond, zero, or negative) land in
    an exact zero bucket and are reported as [0.0]. *)

val default_alpha : float
(** 0.01 — 1% relative error, the accuracy the bench gates quote. *)

val min_value : float
(** Smallest positively-bucketed value (1e-9); anything at or below it
    counts as zero. *)

val alpha : t -> float
val add : t -> float -> unit
val count : t -> int
val sum : t -> float

val min_seen : t -> float
(** Smallest value added; [nan] when empty. *)

val max_seen : t -> float
(** Largest value added; [nan] when empty. *)

val rank_of : float -> int -> int
(** [rank_of q n]: the 1-indexed rank quantile [q] targets in [n]
    samples — [max 1 (ceil (q * n))], clamped to [n]. *)

val quantile : t -> float -> float option
(** [quantile t q] for [q] in [0, 1]: the bucket-midpoint estimate of the
    sample at [rank_of q (count t)], within [alpha t] relative error of
    it ([0.0] exactly for samples in the zero bucket).  [None] on an
    empty sketch.  Raises [Invalid_argument] for [q] outside [0, 1]. *)

val merge : into:t -> t -> unit
(** Accumulate a sketch into another ([into] grows, the source is
    unchanged).  Both must share the same [alpha] ([Invalid_argument]
    otherwise).  Merging is exact: bucket counts add. *)

val copy : t -> t
(** An independent snapshot. *)

val clear : t -> unit

(** {1 Rolling windows}

    A {!window} is a ring of per-interval sub-sketches: each wall-clock
    interval of [interval_s] seconds owns one slot, and a slot is lazily
    re-zeroed when its interval has rotated out of the ring.  Querying the
    last [w] seconds merges the slots covering them (including the
    current, partial interval), so a ring of 60 one-minute slots serves
    1m/5m/1h views of the same stream at once.  A windowed quantile
    carries the same [alpha] bound {e for the samples it covers}; window
    edges are quantized to whole intervals (a "1m" view spans the current
    partial interval plus one full one). *)

type window

val window :
  ?alpha:float -> ?interval_s:float -> ?slots:int -> clock:(unit -> float) ->
  unit -> window
(** [interval_s] (default 60.0) times [slots] (default 60) is the longest
    queryable span — one hour by default.  [clock] supplies "now" in
    seconds (the daemon passes [Unix.gettimeofday]; tests pass a manual
    clock).  Raises [Invalid_argument] for a non-positive interval or
    slot count. *)

val window_alpha : window -> float
val window_span_s : window -> float
(** [interval_s *. slots] — the longest queryable window. *)

val window_add : window -> float -> unit
(** Record into the current interval's slot (and the all-time totals). *)

val window_count : window -> int
val window_sum : window -> float
(** All-time totals, immune to rotation. *)

val window_total : window -> t
(** A snapshot of the all-time sketch (every value ever added, no
    rotation) — the cumulative counterpart of {!window_sketch}. *)

val window_clear : window -> unit
(** Zero every slot and the all-time totals. *)

val window_sketch : window -> float -> t
(** [window_sketch w span_s]: a merged snapshot of the slots covering the
    last [span_s] seconds (clamped to {!window_span_s}); query it with
    {!quantile}/{!count}/{!sum}. *)

val window_quantile : window -> float -> float -> float option
(** [window_quantile w span_s q] = [quantile (window_sketch w span_s) q]. *)
