(** Counter/gauge/histogram registry — see the interface.

    Thread safety: the registry table is guarded by one mutex (registration
    is rare), and every metric carries its own mutex guarding its value(s),
    so two domains bumping different counters never contend and two domains
    bumping the same counter never lose an increment. *)

type counter = { c_name : string; mutable c_value : int; c_mu : Mutex.t }
type gauge = { g_name : string; mutable g_value : float; g_mu : Mutex.t }

type histogram = {
  h_name : string;
  h_bounds : float array;  (** ascending upper bounds, excluding +Inf *)
  h_counts : int array;  (** one per bound, plus the +Inf bucket at the end *)
  h_exemplars : (float * string) option array;
      (** per bucket, the latest exemplared observation: (value, trace id) *)
  mutable h_sum : float;
  mutable h_count : int;
  h_mu : Mutex.t;
}

type summary = {
  s_name : string;
  s_quantiles : float list;
  s_windows : (string * float) list;  (** label, span in seconds *)
  s_window : Sketch.window;  (** ring + all-time totals; self-locking *)
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Summary of summary

type registry = {
  tbl : (string, metric) Hashtbl.t;
  help : (string, string) Hashtbl.t;
  reg_mu : Mutex.t;
}

let create () =
  { tbl = Hashtbl.create 32; help = Hashtbl.create 32; reg_mu = Mutex.create () }

let default = create ()

let default_buckets = [ 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0 ]

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* Label values escape backslash, double quote and newline, per the
   Prometheus text format. *)
let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* The full sample name: [family{k="v",...}].  Static labels are part of
   a metric's identity — same family + different labels = distinct
   metrics sharing one HELP/TYPE block in the exposition. *)
let render_name name labels =
  match labels with
  | [] -> name
  | ls ->
      Printf.sprintf "%s{%s}" name
        (String.concat ","
           (List.map
              (fun (k, v) ->
                Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
              ls))

(* Family name (HELP/TYPE unit): the sample name up to the label braces. *)
let family_of name =
  match String.index_opt name '{' with
  | None -> name
  | Some i -> String.sub name 0 i

let register reg ?(help = "") name make =
  let family = family_of name in
  with_lock reg.reg_mu (fun () ->
      (match Hashtbl.find_opt reg.tbl name with
      | None ->
          Hashtbl.replace reg.tbl name (make ());
          if help <> "" && not (Hashtbl.mem reg.help family) then
            Hashtbl.replace reg.help family help
      | Some _ -> ());
      Hashtbl.find reg.tbl name)

let counter reg ?help ?(labels = []) name =
  let key = render_name name labels in
  match
    register reg ?help key (fun () ->
        Counter { c_name = key; c_value = 0; c_mu = Mutex.create () })
  with
  | Counter c -> c
  | _ -> invalid_arg ("Metrics.counter: " ^ key ^ " is not a counter")

let gauge reg ?help ?(labels = []) name =
  let key = render_name name labels in
  match
    register reg ?help key (fun () ->
        Gauge { g_name = key; g_value = 0.0; g_mu = Mutex.create () })
  with
  | Gauge g -> g
  | _ -> invalid_arg ("Metrics.gauge: " ^ key ^ " is not a gauge")

let histogram reg ?help ?(buckets = default_buckets) name =
  let make () =
    let bounds = Array.of_list buckets in
    Array.iteri
      (fun i b ->
        if i > 0 && b <= bounds.(i - 1) then
          invalid_arg ("Metrics.histogram: buckets not ascending: " ^ name))
      bounds;
    Histogram
      {
        h_name = name;
        h_bounds = bounds;
        h_counts = Array.make (Array.length bounds + 1) 0;
        h_exemplars = Array.make (Array.length bounds + 1) None;
        h_sum = 0.0;
        h_count = 0;
        h_mu = Mutex.create ();
      }
  in
  match register reg ?help name make with
  | Histogram h -> h
  | _ -> invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram")

(* The default window geometry: a ring of 60 one-minute sub-sketches, so
   one summary serves 1m/5m/1h views of its stream at once. *)
let default_windows = [ ("1m", 60.0); ("5m", 300.0); ("1h", 3600.0) ]

let summary reg ?help ?(alpha = Sketch.default_alpha)
    ?(quantiles = [ 0.5; 0.9; 0.99 ]) ?(windows = default_windows)
    ?(clock = Sys.time) name =
  List.iter
    (fun q ->
      if q < 0.0 || q > 1.0 then
        invalid_arg ("Metrics.summary: quantile outside [0,1]: " ^ name))
    quantiles;
  let make () =
    Summary
      {
        s_name = name;
        s_quantiles = quantiles;
        s_windows = windows;
        s_window = Sketch.window ~alpha ~clock ();
      }
  in
  match register reg ?help name make with
  | Summary s -> s
  | _ -> invalid_arg ("Metrics.summary: " ^ name ^ " is not a summary")

let inc ?(by = 1) c = with_lock c.c_mu (fun () -> c.c_value <- c.c_value + by)
let counter_value c = with_lock c.c_mu (fun () -> c.c_value)
let set g v = with_lock g.g_mu (fun () -> g.g_value <- v)
let add g v = with_lock g.g_mu (fun () -> g.g_value <- g.g_value +. v)

let observe ?exemplar h v =
  with_lock h.h_mu (fun () ->
      let n = Array.length h.h_bounds in
      let rec bucket i =
        if i >= n || v <= h.h_bounds.(i) then i else bucket (i + 1)
      in
      let b = bucket 0 in
      h.h_counts.(b) <- h.h_counts.(b) + 1;
      (match exemplar with
      | Some trace_id when trace_id <> "" ->
          h.h_exemplars.(b) <- Some (v, trace_id)
      | _ -> ());
      h.h_sum <- h.h_sum +. v;
      h.h_count <- h.h_count + 1)

let observe_summary s v = Sketch.window_add s.s_window v
let summary_count s = Sketch.window_count s.s_window
let summary_sum s = Sketch.window_sum s.s_window

let summary_quantile s ?window_s q =
  match window_s with
  | None -> Sketch.quantile (Sketch.window_total s.s_window) q
  | Some span -> Sketch.window_quantile s.s_window span q

let histogram_count h = with_lock h.h_mu (fun () -> h.h_count)
let histogram_sum h = with_lock h.h_mu (fun () -> h.h_sum)

(* Escaping for HELP docstrings per the Prometheus text format: backslash
   and newline only. *)
let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* %g keeps 1e-06-style bounds and integral counts compact and stable. *)
let expose reg =
  let buf = Buffer.create 1024 in
  (* snapshot the registrations under the lock; the per-metric reads below
     take each metric's own mutex *)
  let entries =
    with_lock reg.reg_mu (fun () ->
        Hashtbl.fold
          (fun name m acc ->
            (name, Hashtbl.find_opt reg.help (family_of name), m) :: acc)
          reg.tbl []
        |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b))
  in
  let last_family = ref "" in
  List.iter
    (fun (name, help, metric) ->
      (* canonical exposition order: HELP, then TYPE, then the samples —
         and a HELP line for *every* metric, registered with ~help or not,
         so scrapers see a uniform metadata block.  Labeled samples of one
         family are adjacent after the sort and share one metadata
         block. *)
      let family = family_of name in
      let metadata kind =
        if family <> !last_family then begin
          last_family := family;
          (match help with
          | Some help when help <> "" ->
              Buffer.add_string buf
                (Printf.sprintf "# HELP %s %s\n" family (escape_help help))
          | _ -> Buffer.add_string buf (Printf.sprintf "# HELP %s\n" family));
          Buffer.add_string buf
            (Printf.sprintf "# TYPE %s %s\n" family kind)
        end
      in
      match metric with
      | Counter c ->
          metadata "counter";
          Buffer.add_string buf
            (Printf.sprintf "%s %d\n" c.c_name (counter_value c))
      | Gauge g ->
          metadata "gauge";
          let v = with_lock g.g_mu (fun () -> g.g_value) in
          Buffer.add_string buf (Printf.sprintf "%s %g\n" g.g_name v)
      | Histogram h ->
          metadata "histogram";
          let counts, exemplars, sum, count =
            with_lock h.h_mu (fun () ->
                ( Array.copy h.h_counts,
                  Array.copy h.h_exemplars,
                  h.h_sum,
                  h.h_count ))
          in
          (* an OpenMetrics exemplar rides its bucket line:
             [.. # {trace_id="…"} value] — the join key from a scraped
             tail bucket to a concrete distributed trace *)
          let exemplar_suffix i =
            match exemplars.(i) with
            | None -> ""
            | Some (v, trace_id) ->
                Printf.sprintf " # {trace_id=\"%s\"} %g"
                  (escape_label_value trace_id)
                  v
          in
          let cum = ref 0 in
          Array.iteri
            (fun i bound ->
              cum := !cum + counts.(i);
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%g\"} %d%s\n" name bound !cum
                   (exemplar_suffix i)))
            h.h_bounds;
          let last = Array.length h.h_bounds in
          cum := !cum + counts.(last);
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d%s\n" name !cum
               (exemplar_suffix last));
          Buffer.add_string buf (Printf.sprintf "%s_sum %g\n" name sum);
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name count)
      | Summary s ->
          metadata "summary";
          (* cumulative quantiles first, then one block per rolling
             window; empty sketches emit no quantile samples (rather
             than NaN), so a fresh registry still snapshots cleanly *)
          let quantile_lines labels sk =
            List.iter
              (fun q ->
                match Sketch.quantile sk q with
                | None -> ()
                | Some v ->
                    Buffer.add_string buf
                      (Printf.sprintf "%s{%squantile=\"%g\"} %g\n" name
                         labels q v))
              s.s_quantiles
          in
          quantile_lines "" (Sketch.window_total s.s_window);
          List.iter
            (fun (label, span) ->
              quantile_lines
                (Printf.sprintf "window=\"%s\"," (escape_label_value label))
                (Sketch.window_sketch s.s_window span))
            s.s_windows;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %g\n" name (summary_sum s));
          Buffer.add_string buf
            (Printf.sprintf "%s_count %d\n" name (summary_count s)))
    entries;
  Buffer.contents buf

let reset reg =
  let metrics =
    with_lock reg.reg_mu (fun () ->
        Hashtbl.fold (fun _ m acc -> m :: acc) reg.tbl [])
  in
  List.iter
    (fun m ->
      match m with
      | Counter c -> with_lock c.c_mu (fun () -> c.c_value <- 0)
      | Gauge g -> with_lock g.g_mu (fun () -> g.g_value <- 0.0)
      | Histogram h ->
          with_lock h.h_mu (fun () ->
              Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
              Array.fill h.h_exemplars 0 (Array.length h.h_exemplars) None;
              h.h_sum <- 0.0;
              h.h_count <- 0)
      | Summary s -> Sketch.window_clear s.s_window)
    metrics
