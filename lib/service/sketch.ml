(** DDSketch-style streaming quantile sketch — see the interface.

    Bucketing: a value [v > min_value] lands in bucket
    [ceil (log v / log gamma)], so bucket [i] covers
    [(gamma^(i-1), gamma^i]] and its midpoint estimate
    [2 gamma^i / (gamma + 1)] is within [alpha] relative error of every
    value in it (with [gamma = (1+alpha)/(1-alpha)], the edge ratios are
    exactly [1 - alpha] and [1 + alpha]).  Counts live in a hashtable
    keyed by bucket index: memory follows the data's dynamic range, not
    the stream length.

    Thread safety: one mutex per sketch guards every field; the window
    ring adds its own mutex taken {e before} any slot's, so rotation and
    recording never interleave a half-cleared slot. *)

type t = {
  sk_alpha : float;
  sk_gamma : float;
  sk_log_gamma : float;
  sk_buckets : (int, int) Hashtbl.t;
  mutable sk_zero : int;  (** values at or below [min_value] *)
  mutable sk_count : int;
  mutable sk_sum : float;
  mutable sk_min : float;
  mutable sk_max : float;
  sk_mu : Mutex.t;
}

let default_alpha = 0.01
let min_value = 1e-9

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let create ?(alpha = default_alpha) () =
  if not (alpha > 0.0 && alpha < 0.5) then
    invalid_arg "Sketch.create: alpha must be in (0, 0.5)";
  let gamma = (1.0 +. alpha) /. (1.0 -. alpha) in
  {
    sk_alpha = alpha;
    sk_gamma = gamma;
    sk_log_gamma = log gamma;
    sk_buckets = Hashtbl.create 64;
    sk_zero = 0;
    sk_count = 0;
    sk_sum = 0.0;
    sk_min = nan;
    sk_max = nan;
    sk_mu = Mutex.create ();
  }

let alpha t = t.sk_alpha

let key_of t v = int_of_float (Float.ceil (log v /. t.sk_log_gamma))

(* midpoint estimate of bucket [k]: within [alpha] of any value in it *)
let estimate_of t k = 2.0 *. (t.sk_gamma ** float_of_int k) /. (t.sk_gamma +. 1.0)

let add_locked t v =
  if v > min_value then begin
    let k = key_of t v in
    Hashtbl.replace t.sk_buckets k
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.sk_buckets k))
  end
  else t.sk_zero <- t.sk_zero + 1;
  t.sk_count <- t.sk_count + 1;
  t.sk_sum <- t.sk_sum +. v;
  if Float.is_nan t.sk_min || v < t.sk_min then t.sk_min <- v;
  if Float.is_nan t.sk_max || v > t.sk_max then t.sk_max <- v

let add t v =
  if Float.is_nan v then invalid_arg "Sketch.add: nan";
  with_lock t.sk_mu (fun () -> add_locked t v)

let count t = with_lock t.sk_mu (fun () -> t.sk_count)
let sum t = with_lock t.sk_mu (fun () -> t.sk_sum)
let min_seen t = with_lock t.sk_mu (fun () -> t.sk_min)
let max_seen t = with_lock t.sk_mu (fun () -> t.sk_max)

let rank_of q n =
  if n <= 0 then 0
  else max 1 (min n (int_of_float (Float.ceil (q *. float_of_int n))))

let quantile t q =
  if Float.is_nan q || q < 0.0 || q > 1.0 then
    invalid_arg "Sketch.quantile: q must be in [0, 1]";
  with_lock t.sk_mu (fun () ->
      if t.sk_count = 0 then None
      else begin
        let rank = rank_of q t.sk_count in
        if rank <= t.sk_zero then Some 0.0
        else begin
          (* walk buckets in value order (keys ascend with values) until
             the cumulative count reaches the target rank *)
          let keys =
            Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.sk_buckets []
            |> List.sort (fun (a, _) (b, _) -> compare a b)
          in
          let cum = ref t.sk_zero and found = ref None in
          (try
             List.iter
               (fun (k, n) ->
                 cum := !cum + n;
                 if !cum >= rank then begin
                   found := Some (estimate_of t k);
                   raise Exit
                 end)
               keys
           with Exit -> ());
          !found
        end
      end)

(* Snapshot under the source's lock, then fold into the destination under
   its own — never both at once, so [merge ~into:t t] cannot deadlock
   (it doubles the counts, as merging a copy would). *)
let snapshot t =
  with_lock t.sk_mu (fun () ->
      ( Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.sk_buckets [],
        t.sk_zero,
        t.sk_count,
        t.sk_sum,
        t.sk_min,
        t.sk_max ))

let merge ~into src =
  if into.sk_alpha <> src.sk_alpha then
    invalid_arg "Sketch.merge: sketches have different alpha";
  let buckets, zero, count, sum, mn, mx = snapshot src in
  with_lock into.sk_mu (fun () ->
      List.iter
        (fun (k, n) ->
          Hashtbl.replace into.sk_buckets k
            (n + Option.value ~default:0 (Hashtbl.find_opt into.sk_buckets k)))
        buckets;
      into.sk_zero <- into.sk_zero + zero;
      into.sk_count <- into.sk_count + count;
      into.sk_sum <- into.sk_sum +. sum;
      if Float.is_nan into.sk_min || mn < into.sk_min then into.sk_min <- mn;
      if Float.is_nan into.sk_max || mx > into.sk_max then into.sk_max <- mx)

let copy t =
  let out = create ~alpha:t.sk_alpha () in
  merge ~into:out t;
  out

let clear_locked t =
  Hashtbl.reset t.sk_buckets;
  t.sk_zero <- 0;
  t.sk_count <- 0;
  t.sk_sum <- 0.0;
  t.sk_min <- nan;
  t.sk_max <- nan

let clear t = with_lock t.sk_mu (fun () -> clear_locked t)

(* ------------------------------------------------------------------ *)
(* Rolling windows                                                     *)
(* ------------------------------------------------------------------ *)

type window = {
  wd_interval : float;
  wd_clock : unit -> float;
  wd_slots : t array;
  wd_ids : int array;  (** interval id each slot holds; -1 = never used *)
  wd_total : t;
  wd_mu : Mutex.t;
}

let window ?(alpha = default_alpha) ?(interval_s = 60.0) ?(slots = 60) ~clock
    () =
  if interval_s <= 0.0 then
    invalid_arg "Sketch.window: interval_s must be positive";
  if slots < 1 then invalid_arg "Sketch.window: slots must be at least 1";
  {
    wd_interval = interval_s;
    wd_clock = clock;
    wd_slots = Array.init slots (fun _ -> create ~alpha ());
    wd_ids = Array.make slots (-1);
    wd_total = create ~alpha ();
    wd_mu = Mutex.create ();
  }

let window_alpha w = w.wd_total.sk_alpha
let window_span_s w = w.wd_interval *. float_of_int (Array.length w.wd_slots)

let interval_id w = int_of_float (Float.floor (w.wd_clock () /. w.wd_interval))

(* The slot owning interval [e], re-zeroed if it still holds a rotated-out
   interval.  Call with [wd_mu] held. *)
let slot_for w e =
  let n = Array.length w.wd_slots in
  let i = ((e mod n) + n) mod n in
  if w.wd_ids.(i) <> e then begin
    with_lock w.wd_slots.(i).sk_mu (fun () -> clear_locked w.wd_slots.(i));
    w.wd_ids.(i) <- e
  end;
  w.wd_slots.(i)

let window_add w v =
  with_lock w.wd_mu (fun () ->
      let slot = slot_for w (interval_id w) in
      add slot v;
      add w.wd_total v)

let window_count w = count w.wd_total
let window_sum w = sum w.wd_total
let window_total w = copy w.wd_total

let window_clear w =
  with_lock w.wd_mu (fun () ->
      Array.iter clear w.wd_slots;
      Array.fill w.wd_ids 0 (Array.length w.wd_ids) (-1);
      clear w.wd_total)

let window_sketch w span_s =
  with_lock w.wd_mu (fun () ->
      let span = Float.min (Float.max span_s w.wd_interval) (window_span_s w) in
      (* the current (partial) interval plus enough full ones to cover the
         span — window edges are quantized to whole intervals *)
      let back = int_of_float (Float.ceil (span /. w.wd_interval)) in
      let e = interval_id w in
      let out = create ~alpha:w.wd_total.sk_alpha () in
      Array.iteri
        (fun i id -> if id >= e - back && id <= e then merge ~into:out w.wd_slots.(i))
        w.wd_ids;
      out)

let window_quantile w span_s q = quantile (window_sketch w span_s) q
