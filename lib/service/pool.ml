(** Fixed-size domain pool — see the interface. *)

type job = unit -> unit

type t = {
  p_jobs : int;
  p_mu : Mutex.t;
  p_nonempty : Condition.t;  (** signaled on enqueue and on shutdown *)
  p_queue : job Queue.t;
  mutable p_workers : unit Domain.t list;
  mutable p_down : bool;
}

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  f_pool : t;
  f_mu : Mutex.t;
  f_done : Condition.t;
  mutable f_state : 'a state;
}

let jobs t = t.p_jobs

(* Pop the next job, or [None] once the pool is shut down and drained.
   Blocks while the queue is empty but the pool is still up. *)
let worker_pop t : job option =
  Mutex.lock t.p_mu;
  let rec wait () =
    if not (Queue.is_empty t.p_queue) then Some (Queue.pop t.p_queue)
    else if t.p_down then None
    else begin
      Condition.wait t.p_nonempty t.p_mu;
      wait ()
    end
  in
  let j = wait () in
  Mutex.unlock t.p_mu;
  j

(* Non-blocking variant for helpers: a job if one is queued right now. *)
let try_pop t : job option =
  Mutex.lock t.p_mu;
  let j = if Queue.is_empty t.p_queue then None else Some (Queue.pop t.p_queue) in
  Mutex.unlock t.p_mu;
  j

let worker_loop t =
  let rec go () =
    match worker_pop t with
    | Some job ->
        job ();
        go ()
    | None -> ()
  in
  go ()

let create ?(jobs = 1) () =
  let jobs = max 1 (min jobs 128) in
  let t =
    {
      p_jobs = jobs;
      p_mu = Mutex.create ();
      p_nonempty = Condition.create ();
      p_queue = Queue.create ();
      p_workers = [];
      p_down = false;
    }
  in
  (* the caller is the jobs-th worker (it helps while awaiting) *)
  t.p_workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t f =
  let fut =
    { f_pool = t; f_mu = Mutex.create (); f_done = Condition.create (); f_state = Pending }
  in
  let job () =
    let outcome =
      match f () with
      | v -> Done v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock fut.f_mu;
    fut.f_state <- outcome;
    Condition.broadcast fut.f_done;
    Mutex.unlock fut.f_mu
  in
  Mutex.lock t.p_mu;
  if t.p_down then begin
    Mutex.unlock t.p_mu;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push job t.p_queue;
  Condition.signal t.p_nonempty;
  Mutex.unlock t.p_mu;
  fut

let settled fut =
  Mutex.lock fut.f_mu;
  let s = fut.f_state in
  Mutex.unlock fut.f_mu;
  s

let rec await fut =
  match settled fut with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> (
      (* help: run a queued job in this domain rather than going idle.
         The job we are waiting for is either still queued (we may pop and
         run it ourselves) or already running in another domain — in which
         case we block until its completion broadcast. *)
      match try_pop fut.f_pool with
      | Some job ->
          job ();
          await fut
      | None ->
          Mutex.lock fut.f_mu;
          while (match fut.f_state with Pending -> true | _ -> false) do
            Condition.wait fut.f_done fut.f_mu
          done;
          Mutex.unlock fut.f_mu;
          await fut)

let map t f xs =
  let futs = List.map (fun x -> submit t (fun () -> f x)) xs in
  (* settle everything first so one failure cannot orphan running jobs *)
  let results =
    List.map
      (fun fut -> match await fut with v -> Ok v | exception e -> Error e)
      futs
  in
  List.map (function Ok v -> v | Error e -> raise e) results

let shutdown t =
  Mutex.lock t.p_mu;
  let workers = t.p_workers in
  t.p_workers <- [];
  t.p_down <- true;
  Condition.broadcast t.p_nonempty;
  Mutex.unlock t.p_mu;
  (* drain any still-queued jobs here so their futures settle *)
  let rec drain () =
    match try_pop t with
    | Some job ->
        job ();
        drain ()
    | None -> ()
  in
  drain ();
  List.iter Domain.join workers

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
