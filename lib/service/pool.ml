(** Fixed-size domain pool — see the interface. *)

(* A queued closure; returns whether it actually ran (a job cancelled
   before any worker claimed it pops as a no-op and reports [false]). *)
type job = unit -> bool

type t = {
  p_jobs : int;
  p_mu : Mutex.t;
  p_nonempty : Condition.t;  (** signaled on enqueue and on shutdown *)
  p_queue : job Queue.t;
  mutable p_live : int;  (** queued jobs not yet claimed or cancelled *)
  mutable p_workers : unit Domain.t list;
  mutable p_down : bool;
}

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  f_pool : t;
  f_mu : Mutex.t;
  f_done : Condition.t;
  f_claim : bool Atomic.t;
      (** set by the first of: a worker starting the job, or {!cancel} *)
  mutable f_state : 'a state;
}

exception Cancelled

let jobs t = t.p_jobs

(* Pop the next job, or [None] once the pool is shut down and drained.
   Blocks while the queue is empty but the pool is still up. *)
let worker_pop t : job option =
  Mutex.lock t.p_mu;
  let rec wait () =
    if not (Queue.is_empty t.p_queue) then Some (Queue.pop t.p_queue)
    else if t.p_down then None
    else begin
      Condition.wait t.p_nonempty t.p_mu;
      wait ()
    end
  in
  let j = wait () in
  Mutex.unlock t.p_mu;
  j

(* Non-blocking variant for helpers: a job if one is queued right now. *)
let try_pop t : job option =
  Mutex.lock t.p_mu;
  let j = if Queue.is_empty t.p_queue then None else Some (Queue.pop t.p_queue) in
  Mutex.unlock t.p_mu;
  j

let worker_loop t =
  let rec go () =
    match worker_pop t with
    | Some job ->
        ignore (job ());
        go ()
    | None -> ()
  in
  go ()

let create ?(jobs = 1) () =
  let jobs = max 1 (min jobs 128) in
  let t =
    {
      p_jobs = jobs;
      p_mu = Mutex.create ();
      p_nonempty = Condition.create ();
      p_queue = Queue.create ();
      p_live = 0;
      p_workers = [];
      p_down = false;
    }
  in
  (* the caller is the jobs-th worker (it helps while awaiting) *)
  t.p_workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let adjust_live t by =
  Mutex.lock t.p_mu;
  t.p_live <- t.p_live + by;
  Mutex.unlock t.p_mu

let queue_length t =
  Mutex.lock t.p_mu;
  let n = t.p_live in
  Mutex.unlock t.p_mu;
  n

let submit t f =
  let fut =
    {
      f_pool = t;
      f_mu = Mutex.create ();
      f_done = Condition.create ();
      f_claim = Atomic.make false;
      f_state = Pending;
    }
  in
  let job () =
    if not (Atomic.compare_and_set fut.f_claim false true) then false
      (* cancelled while queued: the future already settled *)
    else begin
      adjust_live t (-1);
      let outcome =
        match f () with
        | v -> Done v
        | exception e -> Failed (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock fut.f_mu;
      fut.f_state <- outcome;
      Condition.broadcast fut.f_done;
      Mutex.unlock fut.f_mu;
      true
    end
  in
  Mutex.lock t.p_mu;
  if t.p_down then begin
    Mutex.unlock t.p_mu;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push job t.p_queue;
  t.p_live <- t.p_live + 1;
  Condition.signal t.p_nonempty;
  Mutex.unlock t.p_mu;
  fut

let settled fut =
  Mutex.lock fut.f_mu;
  let s = fut.f_state in
  Mutex.unlock fut.f_mu;
  s

let poll fut =
  match settled fut with
  | Pending -> None
  | Done v -> Some (Ok v)
  | Failed (e, _) -> Some (Error e)

let cancel fut =
  if Atomic.compare_and_set fut.f_claim false true then begin
    adjust_live fut.f_pool (-1);
    let bt = Printexc.get_callstack 0 in
    Mutex.lock fut.f_mu;
    fut.f_state <- Failed (Cancelled, bt);
    Condition.broadcast fut.f_done;
    Mutex.unlock fut.f_mu;
    true
  end
  else false

let rec run_one t =
  match try_pop t with
  | None -> false
  | Some job -> if job () then true else run_one t

let rec await fut =
  match settled fut with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> (
      (* help: run a queued job in this domain rather than going idle.
         The job we are waiting for is either still queued (we may pop and
         run it ourselves) or already running in another domain — in which
         case we block until its completion broadcast. *)
      match try_pop fut.f_pool with
      | Some job ->
          ignore (job ());
          await fut
      | None ->
          Mutex.lock fut.f_mu;
          while (match fut.f_state with Pending -> true | _ -> false) do
            Condition.wait fut.f_done fut.f_mu
          done;
          Mutex.unlock fut.f_mu;
          await fut)

let map t f xs =
  let futs = List.map (fun x -> submit t (fun () -> f x)) xs in
  (* settle everything first so one failure cannot orphan running jobs *)
  let results =
    List.map
      (fun fut -> match await fut with v -> Ok v | exception e -> Error e)
      futs
  in
  List.map (function Ok v -> v | Error e -> raise e) results

let shutdown t =
  Mutex.lock t.p_mu;
  let workers = t.p_workers in
  t.p_workers <- [];
  t.p_down <- true;
  Condition.broadcast t.p_nonempty;
  Mutex.unlock t.p_mu;
  (* drain any still-queued jobs here so their futures settle *)
  let rec drain () =
    match try_pop t with
    | Some job ->
        ignore (job ());
        drain ()
    | None -> ()
  in
  drain ();
  List.iter Domain.join workers

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
