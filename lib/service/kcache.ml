(** Bounded LRU cache of compiled artifacts, sharded and thread-safe.

    The key space is split across N mutex-guarded stripes (hash of the
    key); each stripe is an independent LRU over its share of the global
    capacity, so concurrent lookups of different keys contend only when
    they land on the same stripe.  Recency is tracked with a global
    monotonically increasing tick per slot (an [Atomic], so recency order
    is meaningful across stripes); eviction scans the full stripe for the
    minimum, which is fine at compile-cache capacities (tens to
    hundreds).

    On a miss the compute [f] runs {e outside} the stripe lock, so a slow
    compile never serializes unrelated lookups.  Two domains missing the
    same key concurrently may both run [f]; the first insert wins and the
    table never exceeds its bound — for a deterministic compiler the
    duplicate work is wasted but harmless. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable coalesced : int;
  mutable contended : int;
}

type 'a slot = { value : 'a; mutable last_use : int }

type 'a stripe = {
  sp_mu : Mutex.t;
  sp_tbl : (string, 'a slot) Hashtbl.t;
  sp_cap : int;
}

type 'a t = {
  cap : int;
  strip : 'a stripe array;
  tick : int Atomic.t;
  st : stats;
  st_mu : Mutex.t;
}

let create ?(capacity = 64) ?(stripes = 1) () =
  let cap = max 1 capacity in
  (* never hand a stripe a zero capacity: clamp the stripe count to cap *)
  let n = max 1 (min stripes cap) in
  let base = cap / n and extra = cap mod n in
  {
    cap;
    strip =
      Array.init n (fun i ->
          {
            sp_mu = Mutex.create ();
            sp_tbl = Hashtbl.create 16;
            sp_cap = base + (if i < extra then 1 else 0);
          });
    tick = Atomic.make 0;
    st = { hits = 0; misses = 0; evictions = 0; coalesced = 0; contended = 0 };
    st_mu = Mutex.create ();
  }

let capacity t = t.cap
let stripes t = Array.length t.strip
let stats t = t.st

let stripe_for t key = t.strip.(Hashtbl.hash key mod Array.length t.strip)

(* Lock a stripe, counting the times we found it already held — the
   cache-contention figure the parallel bench reports. *)
let lock_stripe t (s : 'a stripe) =
  if not (Mutex.try_lock s.sp_mu) then begin
    Mutex.lock t.st_mu;
    t.st.contended <- t.st.contended + 1;
    Mutex.unlock t.st_mu;
    Mutex.lock s.sp_mu
  end

(* Counter bumps take st_mu; it is only ever acquired on its own or inside
   a stripe lock (stripe -> stats is the one lock order), never around
   one. *)
let bump t f =
  Mutex.lock t.st_mu;
  f t.st;
  Mutex.unlock t.st_mu

let length t =
  Array.fold_left
    (fun acc s ->
      lock_stripe t s;
      let n = Hashtbl.length s.sp_tbl in
      Mutex.unlock s.sp_mu;
      acc + n)
    0 t.strip

let mem t key =
  let s = stripe_for t key in
  lock_stripe t s;
  let r = Hashtbl.mem s.sp_tbl key in
  Mutex.unlock s.sp_mu;
  r

let touch t (sl : 'a slot) = sl.last_use <- Atomic.fetch_and_add t.tick 1 + 1

let evict_lru t (s : 'a stripe) =
  let victim =
    Hashtbl.fold
      (fun key sl acc ->
        match acc with
        | Some (_, best) when best <= sl.last_use -> acc
        | _ -> Some (key, sl.last_use))
      s.sp_tbl None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
      Hashtbl.remove s.sp_tbl key;
      bump t (fun st -> st.evictions <- st.evictions + 1)

(* Lookups run inside a trace span so cache behaviour shows up on the
   timeline; the result (hit/miss) is attached as the span closes.  On a
   miss the compute [f] nests under the lookup span. *)
let find_or_add t key f =
  Trace.begin_span Trace.default ~cat:"service"
    ~args:[ ("key", key) ]
    "kcache.lookup";
  let result = ref "hit" in
  Fun.protect
    ~finally:(fun () ->
      Trace.end_span Trace.default
        ~args:[ ("result", !result) ]
        "kcache.lookup")
    (fun () ->
      let s = stripe_for t key in
      lock_stripe t s;
      match Hashtbl.find_opt s.sp_tbl key with
      | Some sl ->
          touch t sl;
          Mutex.unlock s.sp_mu;
          bump t (fun st -> st.hits <- st.hits + 1);
          sl.value
      | None ->
          Mutex.unlock s.sp_mu;
          result := "miss";
          bump t (fun st -> st.misses <- st.misses + 1);
          (* compute outside the lock: a slow compile must not serialize
             unrelated lookups on this stripe *)
          let v = f () in
          lock_stripe t s;
          (if not (Hashtbl.mem s.sp_tbl key) then begin
             while Hashtbl.length s.sp_tbl >= s.sp_cap do
               evict_lru t s
             done;
             let sl = { value = v; last_use = 0 } in
             Hashtbl.replace s.sp_tbl key sl;
             touch t sl
           end
           else
             (* a concurrent miss on the same key beat us to the insert;
                keep the resident entry and serve our own (equal) value *)
             touch t (Hashtbl.find s.sp_tbl key));
          Mutex.unlock s.sp_mu;
          v)

let find_or_add_many t reqs =
  (* keys already resolved earlier in this batch: the coalescing window *)
  let in_flight = Hashtbl.create 8 in
  List.map
    (fun (key, f) ->
      match Hashtbl.find_opt in_flight key with
      | Some v ->
          bump t (fun st -> st.coalesced <- st.coalesced + 1);
          v
      | None ->
          let v = find_or_add t key f in
          Hashtbl.replace in_flight key v;
          v)
    reqs

let note_coalesced t n =
  if n > 0 then bump t (fun st -> st.coalesced <- st.coalesced + n)

let keys_by_recency t =
  Array.fold_left
    (fun acc s ->
      lock_stripe t s;
      let entries =
        Hashtbl.fold (fun key sl l -> (key, sl.last_use) :: l) s.sp_tbl acc
      in
      Mutex.unlock s.sp_mu;
      entries)
    [] t.strip
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.map fst

let clear t =
  Array.iter
    (fun s ->
      lock_stripe t s;
      Hashtbl.reset s.sp_tbl;
      Mutex.unlock s.sp_mu)
    t.strip
