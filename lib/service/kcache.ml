(** Bounded LRU cache of compiled artifacts, with accounting.

    Recency is tracked with a monotonically increasing tick per slot;
    eviction scans for the minimum.  That makes eviction O(n) in the number
    of cached entries, which is fine at the capacities a compile cache
    runs at (tens to hundreds) and keeps the structure a single hash
    table. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable coalesced : int;
}

type 'a slot = { value : 'a; mutable last_use : int }

type 'a t = {
  cap : int;
  tbl : (string, 'a slot) Hashtbl.t;
  mutable tick : int;
  st : stats;
}

let create ?(capacity = 64) () =
  {
    cap = max 1 capacity;
    tbl = Hashtbl.create 64;
    tick = 0;
    st = { hits = 0; misses = 0; evictions = 0; coalesced = 0 };
  }

let capacity t = t.cap
let length t = Hashtbl.length t.tbl
let stats t = t.st
let mem t key = Hashtbl.mem t.tbl key

let touch t (s : 'a slot) =
  t.tick <- t.tick + 1;
  s.last_use <- t.tick

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key s acc ->
        match acc with
        | Some (_, best) when best <= s.last_use -> acc
        | _ -> Some (key, s.last_use))
      t.tbl None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
      Hashtbl.remove t.tbl key;
      t.st.evictions <- t.st.evictions + 1

(* Lookups run inside a trace span so cache behaviour shows up on the
   timeline; the result (hit/miss) is attached as the span closes.  On a
   miss the compute [f] nests under the lookup span. *)
let find_or_add t key f =
  Trace.begin_span Trace.default ~cat:"service"
    ~args:[ ("key", key) ]
    "kcache.lookup";
  let result = ref "hit" in
  Fun.protect
    ~finally:(fun () ->
      Trace.end_span Trace.default
        ~args:[ ("result", !result) ]
        "kcache.lookup")
    (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some s ->
          t.st.hits <- t.st.hits + 1;
          touch t s;
          s.value
      | None ->
          result := "miss";
          t.st.misses <- t.st.misses + 1;
          let v = f () in
          while Hashtbl.length t.tbl >= t.cap do
            evict_lru t
          done;
          let s = { value = v; last_use = 0 } in
          Hashtbl.replace t.tbl key s;
          touch t s;
          v)

let find_or_add_many t reqs =
  (* keys already resolved earlier in this batch: the coalescing window *)
  let in_flight = Hashtbl.create 8 in
  List.map
    (fun (key, f) ->
      match Hashtbl.find_opt in_flight key with
      | Some v ->
          t.st.coalesced <- t.st.coalesced + 1;
          v
      | None ->
          let v = find_or_add t key f in
          Hashtbl.replace in_flight key v;
          v)
    reqs

let keys_by_recency t =
  Hashtbl.fold (fun key s acc -> (key, s.last_use) :: acc) t.tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.map fst

let clear t = Hashtbl.reset t.tbl
