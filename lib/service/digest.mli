(** Content-addressed keys for the compile service.

    A compile request is identified by what actually determines its output:
    the source text, the worker being offloaded, the memory-optimizer
    configuration, and (for device-specific artifacts such as tunings) the
    device.  The key is stable under formatting-irrelevant variation — the
    configuration is rendered canonically (fields sorted by name) and
    request fields are length-framed before hashing, so reordering the
    fields of a request cannot change the digest. *)

type t
(** An opaque 128-bit digest, rendered as 32 lowercase hex characters. *)

val canonical_config : Lime_gpu.Memopt.config -> string
(** Canonical rendering of a configuration: [key=bool] pairs sorted by key
    and joined with [";"].  Equal configs always render identically. *)

val config_of_canonical : string -> Lime_gpu.Memopt.config option
(** Inverse of {!canonical_config}; [None] on any malformed or incomplete
    input (used by the tunestore to reject corrupt files). *)

val of_fields : (string * string) list -> t
(** Digest of a set of named fields.  Fields are sorted by name and
    length-framed, so the digest is independent of field order and immune
    to concatenation ambiguity. *)

val of_request :
  ?device:string ->
  ?config:Lime_gpu.Memopt.config ->
  worker:string ->
  string ->
  t
(** [of_request ~worker source] keys a compile request.  [device] defaults
    to ["-"] (device-independent: the generated OpenCL does not depend on
    it); [config] defaults to {!Lime_gpu.Memopt.config_all}. *)

val to_hex : t -> string
(** The full 32-character hex form (also the on-disk artifact name). *)

val short : t -> string
(** The first 12 hex characters, for human-facing log lines. *)

val equal : t -> t -> bool
val compare : t -> t -> int
