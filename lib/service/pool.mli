(** A fixed-size OCaml 5 domain pool with a shared work queue.

    [create ~jobs:n ()] sizes the pool for [n]-way parallelism: [n - 1]
    worker domains are spawned, and the calling domain is the n-th worker —
    while it {!await}s a pending future it pops and runs queued jobs
    itself.  That makes [~jobs:1] spawn {e no} domains at all: every job
    runs inline in the caller, in submission order, so a single-job pool is
    byte-for-byte equivalent to the sequential code it replaces.

    Jobs are independent closures; the pool makes no attempt to run a job's
    dependencies first, so a job must never {!await} a future of its own
    pool (the classic thread-pool deadlock).  The compile service only
    submits leaf work (one compile, one configuration timing), which cannot
    deadlock.

    All operations are thread-safe; futures may be awaited from any
    domain. *)

type t

val create : ?jobs:int -> unit -> t
(** A pool sized for [jobs]-way parallelism (default 1; clamped to
    [1..128]).  [jobs - 1] worker domains are spawned eagerly, so the cost
    of domain creation is paid here, not on the first batch. *)

val jobs : t -> int
(** The parallelism the pool was created with (including the caller). *)

type 'a future

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a job.  Jobs start in FIFO order; an exception raised by the
    job is captured and re-raised by {!await}. *)

val await : 'a future -> 'a
(** Block until the future's job has run, helping the pool (running other
    queued jobs in the calling domain) while it waits.  Re-raises the
    job's exception with its original backtrace if it failed. *)

exception Cancelled
(** The settled state of a future whose job was {!cancel}ed before any
    worker claimed it; {!await} and {!poll} surface it like any other
    job failure. *)

val poll : 'a future -> ('a, exn) result option
(** Non-blocking status: [None] while the job is queued or running,
    [Some (Ok v)] once done, [Some (Error e)] if it raised (or was
    cancelled).  Never helps and never blocks — the probe an event loop
    multiplexing many futures needs. *)

val cancel : 'a future -> bool
(** Try to withdraw a still-queued job.  Returns [true] when the job had
    not been claimed by any worker: it will never run and the future
    settles as [Failed Cancelled].  Returns [false] when the job is
    already running (or finished) — a running job cannot be interrupted,
    only abandoned by its submitter. *)

val queue_length : t -> int
(** Jobs submitted but not yet claimed by a worker (cancelled jobs still
    in the queue are not counted). *)

val run_one : t -> bool
(** Claim and run one queued job in the calling domain, if any; [false]
    when the queue is empty.  This is how a [~jobs:1] event loop (no
    worker domains) makes progress without blocking in {!await}. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map: submit one job per element, await them
    in order.  If any job raised, the first (in list order) exception is
    re-raised after all jobs have settled. *)

val shutdown : t -> unit
(** Drain the queue, stop and join the worker domains.  Idempotent;
    futures already completed stay readable, but submitting to a shut-down
    pool raises [Invalid_argument]. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and always shuts it
    down, exception-safe. *)
