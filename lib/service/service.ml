(** Compile-and-run service façade — see the interface. *)

module Pipeline = Lime_gpu.Pipeline
module Memopt = Lime_gpu.Memopt
module Comm = Lime_runtime.Comm
module Engine = Lime_runtime.Engine
module Diag = Lime_support.Diag
module Loc = Lime_support.Loc
module Search = Lime_rewrite.Search

type origin = Memory | Disk | Compiled

let origin_name = function
  | Memory -> "memory"
  | Disk -> "disk"
  | Compiled -> "compiled"

type t = {
  sv_cache : Pipeline.compiled Kcache.t;
  sv_kernel_dir : string option;
  sv_tunes : Tunestore.t option;
  sv_registry : Metrics.registry;
  sv_disk_hits : int Atomic.t;
  sv_pool : Pool.t;
}

(* Bump when the shape of Pipeline.compiled changes: artifacts are
   Stdlib.Marshal snapshots and must not be read across layouts.  A stale
   or unreadable artifact is simply a miss. *)
let artifact_magic = "lime-kernel-artifact 2\n"

let mkdir_p = Tunestore.(fun dir -> ignore (open_ dir))

let create ?cache_dir ?(capacity = 64) ?(registry = Metrics.default)
    ?(jobs = 1) () =
  let sv_kernel_dir =
    Option.map
      (fun d ->
        let dir = Filename.concat d "kernels" in
        mkdir_p dir;
        dir)
      cache_dir
  in
  let sv_tunes =
    Option.map (fun d -> Tunestore.open_ (Filename.concat d "tune")) cache_dir
  in
  let sv_pool = Pool.create ~jobs () in
  {
    (* one stripe per job: a sequential service keeps the exact
       single-LRU semantics, a parallel one spreads the lock *)
    sv_cache = Kcache.create ~capacity ~stripes:(Pool.jobs sv_pool) ();
    sv_kernel_dir;
    sv_tunes;
    sv_registry = registry;
    sv_disk_hits = Atomic.make 0;
    sv_pool;
  }

let cache t = t.sv_cache
let tunestore t = t.sv_tunes
let registry t = t.sv_registry
let stats t = Kcache.stats t.sv_cache
let disk_hits t = Atomic.get t.sv_disk_hits
let pool t = t.sv_pool
let jobs t = Pool.jobs t.sv_pool
let queue_depth t = Pool.queue_length t.sv_pool
let shutdown t = Pool.shutdown t.sv_pool

let request_digest ?device ?config ~worker source =
  Digest.of_request ?device ?config ~worker source

(* ------------------------------------------------------------------ *)
(* Content-addressed artifact store                                    *)
(* ------------------------------------------------------------------ *)

let artifact_path dir key = Filename.concat dir (Digest.to_hex key ^ ".art")
let opencl_path dir key = Filename.concat dir (Digest.to_hex key ^ ".cl")

let disk_load t key : Pipeline.compiled option =
  match t.sv_kernel_dir with
  | None -> None
  | Some dir ->
      Trace.with_span Trace.default ~cat:"service"
        ~args:[ ("key", Digest.to_hex key) ]
        "service.artifact_load"
        (fun () ->
          let file = artifact_path dir key in
          if not (Sys.file_exists file) then None
          else
            try
              In_channel.with_open_bin file (fun ic ->
                  let magic =
                    really_input_string ic (String.length artifact_magic)
                  in
                  if magic <> artifact_magic then None
                  else
                    Some (Stdlib.Marshal.from_channel ic : Pipeline.compiled))
            with _ -> None)

let disk_store t key (c : Pipeline.compiled) =
  match t.sv_kernel_dir with
  | None -> ()
  | Some dir ->
      Trace.with_span Trace.default ~cat:"service"
        ~args:[ ("key", Digest.to_hex key) ]
        "service.artifact_store"
        (fun () ->
          try
            Out_channel.with_open_bin (artifact_path dir key) (fun oc ->
                Out_channel.output_string oc artifact_magic;
                Stdlib.Marshal.to_channel oc c []);
            (* the generated OpenCL rides along in the clear, so the cache
               doubles as a browsable content-addressed kernel store *)
            Out_channel.with_open_text (opencl_path dir key) (fun oc ->
                Out_channel.output_string oc c.Pipeline.cp_opencl)
          with Sys_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Cached compilation                                                  *)
(* ------------------------------------------------------------------ *)

let compile_ex t ?(config = Memopt.config_all) ?(name = "<service>") ~worker
    source =
  let key = Digest.of_request ~config ~worker source in
  let origin = ref Memory in
  Trace.begin_span Trace.default ~cat:"service"
    ~args:[ ("worker", worker); ("key", Digest.to_hex key) ]
    "service.compile";
  let c =
    Fun.protect
      ~finally:(fun () ->
        Trace.end_span Trace.default
          ~args:[ ("origin", origin_name !origin) ]
          "service.compile")
      (fun () ->
        Kcache.find_or_add t.sv_cache (Digest.to_hex key) (fun () ->
            match disk_load t key with
            | Some c ->
                Atomic.incr t.sv_disk_hits;
                origin := Disk;
                c
            | None ->
                let c = Pipeline.compile ~config ~name ~worker source in
                disk_store t key c;
                origin := Compiled;
                c))
  in
  (c, !origin)

let compile t ?config ?name ~worker source =
  fst (compile_ex t ?config ?name ~worker source)

type request = {
  rq_source : string;
  rq_worker : string;
  rq_config : Memopt.config;
  rq_name : string;
}

let request ?(config = Memopt.config_all) ?(name = "<service>") ~worker
    source =
  { rq_source = source; rq_worker = worker; rq_config = config; rq_name = name }

(* One request, cached and fault-isolated: compiler diagnostics come back
   as [Error]; any other exception (a corrupt artifact store, say) is
   wrapped as a Runtime diagnostic so one bad request never aborts its
   batch. *)
let compile_one t (r : request) : (Pipeline.compiled, Diag.t) result =
  let key =
    Digest.of_request ~config:r.rq_config ~worker:r.rq_worker r.rq_source
  in
  try
    Ok
      (Kcache.find_or_add t.sv_cache (Digest.to_hex key) (fun () ->
           match disk_load t key with
           | Some c ->
               Atomic.incr t.sv_disk_hits;
               c
           | None ->
               let c =
                 Pipeline.compile ~config:r.rq_config ~name:r.rq_name
                   ~worker:r.rq_worker r.rq_source
               in
               disk_store t key c;
               c))
  with
  | Diag.Error_exn d -> Error d
  | exn ->
      Error
        (Diag.make ~phase:Diag.Runtime ~loc:Loc.dummy "%s (request %s)"
           (Printexc.to_string exn) r.rq_name)

let compile_many t (reqs : request list) :
    (Pipeline.compiled, Diag.t) result list =
  (* duplicates inside the batch ride the first occurrence's future — the
     coalescing window find_or_add_many used to provide, kept across the
     pool dispatch *)
  let in_flight = Hashtbl.create 16 in
  let dup = ref 0 in
  let futures =
    List.map
      (fun r ->
        let key =
          Digest.to_hex
            (Digest.of_request ~config:r.rq_config ~worker:r.rq_worker
               r.rq_source)
        in
        match Hashtbl.find_opt in_flight key with
        | Some fut ->
            incr dup;
            fut
        | None ->
            let fut = Pool.submit t.sv_pool (fun () -> compile_one t r) in
            Hashtbl.replace in_flight key fut;
            fut)
      reqs
  in
  Kcache.note_coalesced t.sv_cache !dup;
  List.map Pool.await futures

(* ------------------------------------------------------------------ *)
(* Tunestore-aware sweep                                               *)
(* ------------------------------------------------------------------ *)

(* The Fig 8 sweep fans one timing job per configuration across the pool;
   Pool.map preserves configuration order, so the pre-sort entry list —
   and hence the sorted ranking — is identical to the sequential sweep. *)
let pool_sweep t d k ~shapes ~scalars =
  if Pool.jobs t.sv_pool <= 1 then Gpusim.Autotune.sweep d k ~shapes ~scalars
  else
    Pool.map t.sv_pool
      (fun (name, cfg) ->
        let bd = Gpusim.Autotune.time_config d k cfg ~shapes ~scalars in
        {
          Gpusim.Autotune.at_name = name;
          at_config = cfg;
          at_time_s = bd.Gpusim.Model.bd_total_s;
          at_breakdown = bd;
        })
      Memopt.fig8_configs
    |> List.sort (fun a b ->
           Float.compare a.Gpusim.Autotune.at_time_s b.Gpusim.Autotune.at_time_s)

let sweep t d ~device_key ~digest kernel ~shapes ~scalars =
  let sweep_fn d k ~shapes ~scalars = pool_sweep t d k ~shapes ~scalars in
  match t.sv_tunes with
  | Some ts ->
      Tunestore.cached_sweep ts d ~digest ~device:device_key ~sweep:sweep_fn
        kernel ~shapes ~scalars
  | None -> (pool_sweep t d kernel ~shapes ~scalars, `Miss)

(* ------------------------------------------------------------------ *)
(* Tunestore-aware beam schedule                                       *)
(* ------------------------------------------------------------------ *)

(* Beam results live in the tunestore beside the Fig 8 sweep records,
   under a ".beam"-suffixed device key so the two kinds of record never
   clobber each other. *)
let beam_device_key device = device ^ ".beam"

let beam_schedule t (d : Gpusim.Device.t) ~device_key ~digest ?width ?depth
    (k : Lime_gpu.Kernel.kernel) ~shapes ~scalars :
    Search.candidate * [ `Replayed | `Searched of Search.outcome ] =
  let device = beam_device_key device_key in
  let search_and_store () =
    let o = Search.search ?width ?depth d k ~shapes ~scalars in
    let best = o.Search.so_best in
    (match t.sv_tunes with
    | None -> ()
    | Some ts ->
        let c = best.Search.sc_counters in
        Tunestore.store ts ~digest ~device
          {
            Tunestore.tr_config_name = "beam";
            tr_config = best.Search.sc_state.Lime_rewrite.Rewrite.st_config;
            tr_time_s = best.Search.sc_time_s;
            tr_headline =
              Some
                {
                  Tunestore.th_occupancy = c.Gpusim.Counters.ct_occupancy;
                  th_bank_replays = c.Gpusim.Counters.ct_bank_replays;
                  th_roofline =
                    Gpusim.Counters.roofline_name (Gpusim.Counters.classify c);
                };
            tr_sequence = Some best.Search.sc_sequence;
            tr_placement = None;
          });
    (best, `Searched o)
  in
  let stored =
    match t.sv_tunes with
    | None -> None
    | Some ts -> (
        match Tunestore.load ts ~digest ~device with
        | Some { Tunestore.tr_sequence = Some seq; _ } -> Some seq
        | _ -> None)
  in
  match stored with
  | None -> search_and_store ()
  | Some seq -> (
      match Search.replay d k seq ~shapes ~scalars with
      | Ok c -> (c, `Replayed)
      | Error _ ->
          (* a schedule that no longer replays (store written against a
             different kernel shape) is treated as a miss *)
          search_and_store ())

(* ------------------------------------------------------------------ *)
(* Tunestore-aware multi-device placement                              *)
(* ------------------------------------------------------------------ *)

module Sched = Lime_sched

(* Placement records live under a fixed pseudo-device key: a placement
   spans all devices, so no single device name applies, and the constant
   keeps placement records from clobbering sweep or beam records. *)
let sched_device_key = "multi.sched"

let sched_placement t ~digest ?serializer ~firings
    (stages : Sched.Probe.stage list) :
    Sched.Search.candidate
    * [ `Replayed | `Searched of Sched.Search.outcome ] =
  let device = sched_device_key in
  let search_and_store () =
    let o = Sched.Search.search ?serializer ~firings stages in
    let best = o.Sched.Search.po_best in
    (match t.sv_tunes with
    | None -> ()
    | Some ts ->
        Tunestore.store ts ~digest ~device
          {
            Tunestore.tr_config_name = "sched";
            tr_config = Lime_gpu.Memopt.config_all;
            tr_time_s = best.Sched.Search.pc_time_s;
            tr_headline = None;
            tr_sequence = None;
            tr_placement =
              Some (Sched.Placement.to_spec best.Sched.Search.pc_placement);
          });
    (best, `Searched o)
  in
  let stored =
    match t.sv_tunes with
    | None -> None
    | Some ts -> (
        match Tunestore.load ts ~digest ~device with
        | Some { Tunestore.tr_placement = Some spec; _ } -> Some spec
        | _ -> None)
  in
  match stored with
  | None -> search_and_store ()
  | Some spec -> (
      match Sched.Placement.of_spec spec with
      | Error _ -> search_and_store ()
      | Ok p -> (
          match Sched.Search.replay ?serializer ~firings stages p with
          | Ok c -> (c, `Replayed)
          | Error _ ->
              (* a placement that no longer fits (store written against a
                 different pipeline) is treated as a miss *)
              search_and_store ()))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let export_stats t =
  let reg = t.sv_registry in
  let s = Kcache.stats t.sv_cache in
  Metrics.set (Metrics.gauge reg "lime_kcache_hits") (float_of_int s.Kcache.hits);
  Metrics.set (Metrics.gauge reg "lime_kcache_misses") (float_of_int s.Kcache.misses);
  Metrics.set (Metrics.gauge reg "lime_kcache_evictions") (float_of_int s.Kcache.evictions);
  Metrics.set (Metrics.gauge reg "lime_kcache_coalesced") (float_of_int s.Kcache.coalesced);
  Metrics.set (Metrics.gauge reg "lime_kcache_contended") (float_of_int s.Kcache.contended);
  Metrics.set (Metrics.gauge reg "lime_kcache_disk_hits") (float_of_int (Atomic.get t.sv_disk_hits));
  Metrics.set (Metrics.gauge reg "lime_kcache_entries") (float_of_int (Kcache.length t.sv_cache))

let expose t =
  export_stats t;
  Metrics.expose t.sv_registry

let instrument ?(registry = Metrics.default) () =
  let compile_total =
    Metrics.counter registry ~help:"completed Pipeline.compile calls"
      "lime_compile_total"
  in
  let compile_seconds =
    Metrics.histogram registry ~help:"Pipeline.compile CPU seconds"
      "lime_compile_seconds"
  in
  Pipeline.on_compile ~key:"metrics" (fun ~worker:_ ~seconds ->
      Metrics.inc compile_total;
      Metrics.observe compile_seconds seconds);
  (* the rewrite engine's beam search and stored-schedule replays *)
  let rewrite_searches =
    Metrics.counter registry ~help:"beam searches run"
      "lime_rewrite_searches_total"
  in
  let rewrite_evals =
    Metrics.counter registry ~help:"cost-model evaluations spent by beam search"
      "lime_rewrite_evals_total"
  in
  let rewrite_improved =
    Metrics.counter registry
      ~help:"beam searches that beat the best Fig 8 configuration"
      "lime_rewrite_improved_total"
  in
  let rewrite_replays =
    Metrics.counter registry
      ~help:"stored rewrite schedules replayed without re-searching"
      "lime_rewrite_replays_total"
  in
  let rewrite_best_time =
    Metrics.gauge registry
      ~help:"modeled kernel seconds of the most recent search's best schedule"
      "lime_rewrite_best_time_s"
  in
  Search.on_search ~key:"metrics" (fun ev ->
      match ev with
      | Search.EBegin _ | Search.ELevel _ -> ()
      | Search.EEnd { evals; best_time_s; improved; _ } ->
          Metrics.inc rewrite_searches;
          Metrics.inc ~by:evals rewrite_evals;
          Metrics.set rewrite_best_time best_time_s;
          if improved then Metrics.inc rewrite_improved
      | Search.EReplay { ok; _ } -> if ok then Metrics.inc rewrite_replays);
  (* the multi-device placement search and stored-placement replays *)
  let sched_searches =
    Metrics.counter registry ~help:"multi-device placement searches run"
      "lime_sched_searches_total"
  in
  let sched_evals =
    Metrics.counter registry
      ~help:"cost-model evaluations spent by placement search"
      "lime_sched_evals_total"
  in
  let sched_improved =
    Metrics.counter registry
      ~help:"placement searches that beat the best single device"
      "lime_sched_improved_total"
  in
  let sched_replays =
    Metrics.counter registry
      ~help:"stored placements replayed without re-searching"
      "lime_sched_replays_total"
  in
  let sched_best_time =
    Metrics.gauge registry
      ~help:
        "modeled overlapped makespan of the most recent search's best \
         placement"
      "lime_sched_best_time_s"
  in
  Sched.Search.on_search ~key:"metrics" (fun ev ->
      match ev with
      | Sched.Search.SBegin _ -> ()
      | Sched.Search.SEnd { evals; best_time_s; improved; _ } ->
          Metrics.inc sched_searches;
          Metrics.inc ~by:evals sched_evals;
          Metrics.set sched_best_time best_time_s;
          if improved then Metrics.inc sched_improved
      | Sched.Search.SReplay { ok; _ } ->
          if ok then Metrics.inc sched_replays);
  let device_firings =
    Metrics.counter registry ~help:"task firings offloaded to the device"
      "lime_firings_device_total"
  in
  let host_firings =
    Metrics.counter registry ~help:"task firings run as host bytecode"
      "lime_firings_host_total"
  in
  let leg name =
    Metrics.histogram registry
      ~help:("per-firing " ^ name ^ " leg of Comm.phases, seconds")
      ("lime_comm_" ^ name ^ "_seconds")
  in
  let java_marshal = leg "java_marshal"
  and jni = leg "jni"
  and c_marshal = leg "c_marshal"
  and setup = leg "setup"
  and pcie = leg "pcie"
  and kernel = leg "kernel"
  and host = leg "host" in
  (* simulated hardware counters, accumulated across device firings *)
  let ctr name help =
    Metrics.gauge registry ~help ("lime_counters_" ^ name)
  in
  let ct_gtx_coalesced = ctr "gtx_coalesced" "coalesced global-memory transactions"
  and ct_gtx_uncoalesced = ctr "gtx_uncoalesced" "uncoalesced global-memory transactions"
  and ct_bytes_global = ctr "bytes_global" "bytes moved over the device-memory bus"
  and ct_cache_hits = ctr "cache_hits" "L1/L2 cache hits on global accesses"
  and ct_cache_misses = ctr "cache_misses" "L1/L2 cache misses on global accesses"
  and ct_bank_replays = ctr "bank_replays" "local-memory bank-conflict replays"
  and ct_const_serialized = ctr "const_serialized" "serialized (divergent) constant reads"
  and ct_tex_fetches = ctr "tex_fetches" "texture fetches"
  and ct_warps = ctr "warps" "warps launched"
  and ct_occupancy = ctr "occupancy_last" "occupancy of the most recent launch" in
  let roofline_count cls =
    Metrics.counter registry
      ~help:("device launches classified " ^ cls)
      ("lime_counters_roofline_" ^ cls ^ "_total")
  in
  let rl_compute = roofline_count "compute"
  and rl_memory = roofline_count "memory"
  and rl_latency = roofline_count "latency" in
  Engine.on_firing ~key:"metrics" (fun fi ->
      let phases = fi.Engine.fi_phases in
      if fi.Engine.fi_device then begin
        Metrics.inc device_firings;
        Metrics.observe java_marshal phases.Comm.java_marshal_s;
        Metrics.observe jni phases.Comm.jni_s;
        Metrics.observe c_marshal phases.Comm.c_marshal_s;
        Metrics.observe setup phases.Comm.setup_s;
        Metrics.observe pcie phases.Comm.pcie_s;
        Metrics.observe kernel phases.Comm.kernel_s;
        match fi.Engine.fi_counters with
        | None -> ()
        | Some c ->
            Metrics.add ct_gtx_coalesced c.Gpusim.Counters.ct_gtx_coalesced;
            Metrics.add ct_gtx_uncoalesced c.Gpusim.Counters.ct_gtx_uncoalesced;
            Metrics.add ct_bytes_global c.Gpusim.Counters.ct_bytes_global;
            Metrics.add ct_cache_hits c.Gpusim.Counters.ct_cache_hits;
            Metrics.add ct_cache_misses c.Gpusim.Counters.ct_cache_misses;
            Metrics.add ct_bank_replays c.Gpusim.Counters.ct_bank_replays;
            Metrics.add ct_const_serialized c.Gpusim.Counters.ct_const_serialized;
            Metrics.add ct_tex_fetches c.Gpusim.Counters.ct_tex_fetches;
            Metrics.add ct_warps c.Gpusim.Counters.ct_warps;
            Metrics.set ct_occupancy c.Gpusim.Counters.ct_occupancy;
            Metrics.inc
              (match Gpusim.Counters.classify c with
              | Gpusim.Counters.Compute_bound -> rl_compute
              | Gpusim.Counters.Memory_bound -> rl_memory
              | Gpusim.Counters.Latency_bound -> rl_latency)
      end
      else begin
        Metrics.inc host_firings;
        Metrics.observe host phases.Comm.host_s
      end)

let uninstrument () =
  Pipeline.remove_compile_observer "metrics";
  Engine.remove_firing_observer "metrics";
  Search.remove_search_observer "metrics";
  Sched.Search.remove_search_observer "metrics"
