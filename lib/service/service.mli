(** The compile-and-run service: content-addressed kernel cache +
    persistent autotune store + metrics, behind one façade.

    A {!t} turns the one-shot {!Lime_gpu.Pipeline.compile} into a reusable
    service: repeated requests for the same (source, worker, config) are
    served from a bounded in-memory LRU ({!Kcache}); when a [cache_dir] is
    given, compiled artifacts are also persisted content-addressed on disk
    (so a *second process* starts warm) and sweep results go through the
    {!Tunestore}.  {!instrument} wires the {!Metrics} registry into
    {!Lime_gpu.Pipeline.compile}, {!Lime_runtime.Engine} firings and
    {!Lime_runtime.Comm.phases}.

    A service created with [~jobs:n] owns a {!Pool} of [n - 1] worker
    domains: {!compile_many} fans a batch across them (the sharded
    {!Kcache}, {!Metrics} and {!Trace} are all domain-safe) and {!sweep}
    times the eight Fig 8 configurations in parallel.  With the default
    [~jobs:1] no domains are spawned and every entry point behaves exactly
    like the sequential service it replaces. *)

type t

type origin =
  | Memory  (** served from the in-process LRU *)
  | Disk  (** deserialized from the content-addressed artifact store *)
  | Compiled  (** freshly compiled (and persisted when [cache_dir] is set) *)

val origin_name : origin -> string

val create :
  ?cache_dir:string ->
  ?capacity:int ->
  ?registry:Metrics.registry ->
  ?jobs:int ->
  unit ->
  t
(** [cache_dir] enables the on-disk artifact store ([<dir>/kernels/]) and
    the tunestore ([<dir>/tune/]); without it the service is purely
    in-memory.  [capacity] bounds the LRU (default 64).  [registry]
    defaults to {!Metrics.default}.  [jobs] (default 1) sizes the domain
    pool for batch compilation and parallel sweeps; the kernel cache is
    striped [jobs] ways, so [~jobs:1] keeps the exact sequential LRU
    semantics. *)

val cache : t -> Lime_gpu.Pipeline.compiled Kcache.t
val tunestore : t -> Tunestore.t option
val registry : t -> Metrics.registry

val pool : t -> Pool.t
val jobs : t -> int
(** The pool's parallelism (1 = sequential, no worker domains). *)

val queue_depth : t -> int
(** Jobs submitted to the pool but not yet claimed by a worker — the
    admission-queue gauge the compile daemon ({!Lime_server.Server})
    exports as [lime_server_queue_depth]. *)

val shutdown : t -> unit
(** Stop and join the service's worker domains (idempotent).  Only batch
    entry points require the pool; {!compile} keeps working after. *)

val request_digest :
  ?device:string ->
  ?config:Lime_gpu.Memopt.config ->
  worker:string ->
  string ->
  Digest.t
(** The cache key {!compile} uses for this request. *)

val compile :
  t ->
  ?config:Lime_gpu.Memopt.config ->
  ?name:string ->
  worker:string ->
  string ->
  Lime_gpu.Pipeline.compiled
(** Cached {!Lime_gpu.Pipeline.compile}. *)

val compile_ex :
  t ->
  ?config:Lime_gpu.Memopt.config ->
  ?name:string ->
  worker:string ->
  string ->
  Lime_gpu.Pipeline.compiled * origin
(** Like {!compile}, also reporting where the artifact came from. *)

type request = {
  rq_source : string;
  rq_worker : string;
  rq_config : Lime_gpu.Memopt.config;
  rq_name : string;
}

val request :
  ?config:Lime_gpu.Memopt.config ->
  ?name:string ->
  worker:string ->
  string ->
  request

val compile_many :
  t ->
  request list ->
  (Lime_gpu.Pipeline.compiled, Lime_support.Diag.t) result list
(** Serve a batch of requests across the service's domain pool.  Results
    are in request order; duplicates within the batch are coalesced onto
    one compile (counted as [coalesced] in {!stats}).  Each request fails
    independently: a compiler diagnostic (or any other exception, wrapped
    as a [Runtime] diagnostic) comes back as [Error] for that request and
    never aborts the rest of the batch. *)

val sweep :
  t ->
  Gpusim.Device.t ->
  device_key:string ->
  digest:Digest.t ->
  Lime_gpu.Kernel.kernel ->
  shapes:(string * int array) list ->
  scalars:(string * float) list ->
  Gpusim.Autotune.entry list * [ `Hit of Tunestore.record | `Miss ]
(** Tunestore-aware autotune sweep: with a [cache_dir], a repeated sweep of
    the same kernel digest on the same [device_key] consults the stored
    best configuration instead of re-timing all eight.  Without a
    [cache_dir] this is exactly {!Gpusim.Autotune.sweep} (always [`Miss]).
    With [~jobs > 1] the eight configurations are timed in parallel on the
    pool; the ranking is identical to the sequential sweep. *)

val beam_schedule :
  t ->
  Gpusim.Device.t ->
  device_key:string ->
  digest:Digest.t ->
  ?width:int ->
  ?depth:int ->
  Lime_gpu.Kernel.kernel ->
  shapes:(string * int array) list ->
  scalars:(string * float) list ->
  Lime_rewrite.Search.candidate
  * [ `Replayed | `Searched of Lime_rewrite.Search.outcome ]
(** Tunestore-aware beam search over the rewrite catalog
    ({!Lime_rewrite.Search.search}).  With a [cache_dir], the winning
    schedule persists as a format-3 tunestore record (device key suffixed
    [".beam"], so beam records never collide with Fig 8 sweep records); a
    warm call replays the stored sequence ({!Lime_rewrite.Search.replay} —
    one cost-model evaluation, [`Replayed]) instead of re-searching.  A
    stored schedule that no longer applies falls back to a fresh search.
    Without a [cache_dir] every call searches ([`Searched]). *)

val sched_placement :
  t ->
  digest:Digest.t ->
  ?serializer:Lime_runtime.Marshal.serializer ->
  firings:int ->
  Lime_sched.Probe.stage list ->
  Lime_sched.Search.candidate
  * [ `Replayed | `Searched of Lime_sched.Search.outcome ]
(** Tunestore-aware multi-device placement search
    ({!Lime_sched.Search.search}).  With a [cache_dir], the winning
    placement persists as a format-4 tunestore record under the fixed
    pseudo-device key ["multi.sched"] (a placement spans all devices, so
    no single device name applies); a warm call replays the stored spec
    ({!Lime_sched.Search.replay} — one cost-model evaluation,
    [`Replayed]) instead of re-searching.  A stored placement that no
    longer fits the probed pipeline falls back to a fresh search.
    Without a [cache_dir] every call searches ([`Searched]). *)

val stats : t -> Kcache.stats

val disk_hits : t -> int
(** Artifacts served from the on-disk store (the second cache tier). *)

val expose : t -> string
(** Refresh the cache gauges and render the service's registry
    ({!Metrics.expose}). *)

val instrument : ?registry:Metrics.registry -> unit -> unit
(** Install the metrics observers (keyed ["metrics"]) through
    {!Lime_gpu.Pipeline.on_compile}, {!Lime_runtime.Engine.on_firing} and
    {!Lime_rewrite.Search.on_search}: compile counts/latency histograms,
    firing counters, one histogram per {!Lime_runtime.Comm.phases} leg,
    and the [lime_rewrite_*] beam-search family (searches, cost-model
    evaluations, improvements over Fig 8, stored-schedule replays, best
    modeled time).  Keyed registration makes this idempotent and lets it
    compose with the tracer's observers ({!Trace.install}) — metrics and
    tracing can be on at once. *)

val uninstrument : unit -> unit
(** Remove the observers {!instrument} registered. *)
