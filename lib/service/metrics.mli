(** A small counter/gauge/histogram registry with deterministic text
    exposition.

    The exposition format is Prometheus-flavoured text: metrics sorted by
    name, each prefixed by a [# HELP] line (present for every metric,
    registered with [~help] or not, with backslash/newline escaped) and a
    [# TYPE] line, histograms as cumulative [_bucket{le=..}] lines ending
    in the [+Inf] bucket plus [_sum] and [_count] — the canonical order.
    Deterministic output (stable ordering, fixed bucket bounds) is what
    lets tests snapshot it.

    Registries are explicit values; {!default} is the process-wide one the
    instrumentation hooks write to.

    {b Thread safety}: every operation may be called from any domain.
    Registration is guarded by one registry mutex; each metric carries its
    own mutex, so concurrent updates to the same counter/histogram never
    lose increments and updates to different metrics never contend.
    {!expose} and {!reset} snapshot under the same locks, so an exposition
    taken mid-update is always internally consistent per metric. *)

type registry
type counter
type gauge
type histogram
type summary

val create : unit -> registry

val default : registry
(** The process-wide registry used by {!Service.instrument}. *)

val counter :
  registry -> ?help:string -> ?labels:(string * string) list -> string ->
  counter
(** Register (or retrieve) the counter of that name.  Re-registration with
    the same name returns the existing metric; registering a name already
    used by a different metric kind raises [Invalid_argument].

    [labels] are {e static} key/value pairs baked into the metric's
    identity: the sample renders as [name{k="v",...} value] (values
    escaped per the text format), and several label sets of one family
    share a single [# HELP]/[# TYPE] block — e.g. the server's
    [lime_build_info{version=...,protocol=...,ocaml=...} 1]. *)

val gauge :
  registry -> ?help:string -> ?labels:(string * string) list -> string ->
  gauge

val histogram :
  registry -> ?help:string -> ?buckets:float list -> string -> histogram
(** Buckets are upper bounds in ascending order; a [+Inf] bucket is always
    appended.  Default buckets span 1µs..1s decades — sized for the
    compile and communication latencies this repo measures. *)

val default_buckets : float list

val summary :
  registry -> ?help:string -> ?alpha:float -> ?quantiles:float list ->
  ?windows:(string * float) list -> ?clock:(unit -> float) -> string ->
  summary
(** Register (or retrieve) a streaming-quantile summary backed by a
    {!Sketch.window} ring.  Exposition emits one
    [name{quantile="q"} v] sample per quantile over {e all} values ever
    observed, plus one [name{window="label",quantile="q"} v] sample per
    rolling window in [windows] (label, span in seconds — default
    {!default_windows}), then [_sum] and [_count]; empty sketches emit no
    quantile samples.  [alpha] is the sketch's relative-error bound
    (default {!Sketch.default_alpha}); [clock] supplies "now" in seconds
    for window rotation (the daemon passes [Unix.gettimeofday]). *)

val default_windows : (string * float) list
(** [["1m", 60.; "5m", 300.; "1h", 3600.]] — the multi-resolution views a
    summary exposes by default. *)

val inc : ?by:int -> counter -> unit
val counter_value : counter -> int
val set : gauge -> float -> unit

(** Accumulate into a gauge — used for float-valued totals (bytes,
    transactions) that a [counter]'s int value cannot hold. *)
val add : gauge -> float -> unit

val observe : ?exemplar:string -> histogram -> float -> unit
(** Record a value.  [exemplar] is a trace id: the bucket the value lands
    in remembers the latest [(value, trace_id)] pair and exposition
    renders it as an OpenMetrics suffix
    [name_bucket{le="0.1"} 3 # {trace_id="..."} 0.043], linking a scraped
    tail bucket to a concrete trace. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float
val observe_summary : summary -> float -> unit
val summary_count : summary -> int
val summary_sum : summary -> float

val summary_quantile : summary -> ?window_s:float -> float -> float option
(** [summary_quantile s q]: the cumulative quantile estimate (all values
    ever observed); with [~window_s] the estimate over the last
    [window_s] seconds.  [None] when the covering sketch is empty. *)

val expose : registry -> string
(** The full registry as deterministic exposition text. *)

val reset : registry -> unit
(** Zero every metric's value; registrations are kept. *)
