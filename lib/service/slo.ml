(** Multi-window burn-rate SLO evaluation — see the interface. *)

type kind = Latency of float | Availability
type def = { d_name : string; d_kind : kind; d_objective : float }
type state = Healthy | Warn | Firing

type status = {
  st_def : def;
  st_state : state;
  st_fast_burn : float;
  st_slow_burn : float;
  st_good : int;
  st_bad : int;
}

let spec_syntax = "[NAME=]KIND:OBJECTIVE[:THRESHOLD] with KIND one of latency (requires THRESHOLD seconds) or availability"

let parse_float s = float_of_string_opt (String.trim s)

let parse_spec spec =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let name, body =
    match String.index_opt spec '=' with
    | Some i ->
        ( String.sub spec 0 i,
          String.sub spec (i + 1) (String.length spec - i - 1) )
    | None -> ("", spec)
  in
  match String.split_on_char ':' body with
  | kind :: rest -> begin
      let kind = String.lowercase_ascii (String.trim kind) in
      let name = if name = "" then kind else String.trim name in
      if name = "" then err "empty SLO name in %S" spec
      else
        let objective obj =
          match parse_float obj with
          | Some o when o > 0.0 && o < 1.0 -> Ok o
          | _ -> err "SLO objective must be in (0, 1): %S" spec
        in
        match (kind, rest) with
        | "latency", [ obj; thr ] -> begin
            match (objective obj, parse_float thr) with
            | Ok o, Some t when t > 0.0 ->
                Ok { d_name = name; d_kind = Latency t; d_objective = o }
            | (Error _ as e), _ -> e
            | _ -> err "latency SLO threshold must be positive seconds: %S" spec
          end
        | "latency", _ ->
            err "latency SLO needs OBJECTIVE:THRESHOLD (e.g. latency:0.95:1.0): %S"
              spec
        | "availability", [ obj ] -> begin
            match objective obj with
            | Ok o -> Ok { d_name = name; d_kind = Availability; d_objective = o }
            | Error _ as e -> e
          end
        | "availability", _ ->
            err "availability SLO takes only OBJECTIVE (e.g. availability:0.99): %S"
              spec
        | _ -> err "unknown SLO kind %S (expected latency or availability)" kind
    end
  | [] -> err "empty SLO spec"

let render_spec d =
  match d.d_kind with
  | Latency t -> Printf.sprintf "%s=latency:%g:%g" d.d_name d.d_objective t
  | Availability -> Printf.sprintf "%s=availability:%g" d.d_name d.d_objective

(* ------------------------------------------------------------------ *)
(* Per-objective good/bad ring                                         *)
(* ------------------------------------------------------------------ *)

(* One slot per minute, enough slots to cover the slow window; the slot
   owning a rotated-out interval is lazily re-zeroed, as in Sketch. *)
type ring = {
  rg_good : int array;
  rg_bad : int array;
  rg_ids : int array;  (* interval id each slot holds; -1 = never used *)
  mutable rg_total_good : int;
  mutable rg_total_bad : int;
}

let interval_s = 60.0

type t = {
  t_defs : def list;
  t_fast : float;
  t_slow : float;
  t_factor : float;
  t_clock : unit -> float;
  t_rings : ring array;  (* one per def, in order *)
  t_mu : Mutex.t;
}

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let create ?(fast_s = 300.0) ?(slow_s = 3600.0) ?(burn_factor = 14.4) ~clock
    defs =
  if fast_s <= 0.0 || slow_s < fast_s then
    invalid_arg "Slo.create: need 0 < fast_s <= slow_s";
  if burn_factor <= 0.0 then invalid_arg "Slo.create: burn_factor must be positive";
  let slots = max 2 (1 + int_of_float (Float.ceil (slow_s /. interval_s))) in
  {
    t_defs = defs;
    t_fast = fast_s;
    t_slow = slow_s;
    t_factor = burn_factor;
    t_clock = clock;
    t_rings =
      Array.init (List.length defs) (fun _ ->
          {
            rg_good = Array.make slots 0;
            rg_bad = Array.make slots 0;
            rg_ids = Array.make slots (-1);
            rg_total_good = 0;
            rg_total_bad = 0;
          });
    t_mu = Mutex.create ();
  }

let defs t = t.t_defs
let fast_s t = t.t_fast
let slow_s t = t.t_slow
let burn_factor t = t.t_factor

let interval_id t = int_of_float (Float.floor (t.t_clock () /. interval_s))

(* call with [t_mu] held *)
let slot_for r e =
  let n = Array.length r.rg_ids in
  let i = ((e mod n) + n) mod n in
  if r.rg_ids.(i) <> e then begin
    r.rg_good.(i) <- 0;
    r.rg_bad.(i) <- 0;
    r.rg_ids.(i) <- e
  end;
  i

let good_for def ~ok ~duration_s =
  match def.d_kind with
  | Availability -> ok
  | Latency thr -> ok && duration_s <= thr

let record t ~ok ~duration_s =
  with_lock t.t_mu (fun () ->
      let e = interval_id t in
      List.iteri
        (fun i def ->
          let r = t.t_rings.(i) in
          let s = slot_for r e in
          if good_for def ~ok ~duration_s then begin
            r.rg_good.(s) <- r.rg_good.(s) + 1;
            r.rg_total_good <- r.rg_total_good + 1
          end
          else begin
            r.rg_bad.(s) <- r.rg_bad.(s) + 1;
            r.rg_total_bad <- r.rg_total_bad + 1
          end)
        t.t_defs)

(* good/bad over the last [span_s] seconds: the current (partial)
   interval plus enough full ones to cover the span.  Call with [t_mu]
   held. *)
let window_counts r ~now_e span_s =
  let back = int_of_float (Float.ceil (span_s /. interval_s)) in
  let good = ref 0 and bad = ref 0 in
  Array.iteri
    (fun i id ->
      if id >= now_e - back && id <= now_e then begin
        good := !good + r.rg_good.(i);
        bad := !bad + r.rg_bad.(i)
      end)
    r.rg_ids;
  (!good, !bad)

let burn_rate def (good, bad) =
  let total = good + bad in
  if total = 0 then 0.0
  else
    let bad_fraction = float_of_int bad /. float_of_int total in
    bad_fraction /. (1.0 -. def.d_objective)

let evaluate t =
  with_lock t.t_mu (fun () ->
      let e = interval_id t in
      List.mapi
        (fun i def ->
          let r = t.t_rings.(i) in
          let fast = burn_rate def (window_counts r ~now_e:e t.t_fast) in
          let slow = burn_rate def (window_counts r ~now_e:e t.t_slow) in
          let state =
            if fast >= t.t_factor && slow >= t.t_factor then Firing
            else if fast >= t.t_factor then Warn
            else Healthy
          in
          {
            st_def = def;
            st_state = state;
            st_fast_burn = fast;
            st_slow_burn = slow;
            st_good = r.rg_total_good;
            st_bad = r.rg_total_bad;
          })
        t.t_defs)

let state_name = function
  | Healthy -> "ok"
  | Warn -> "warn"
  | Firing -> "firing"
