(** File-backed store of autotuning results.

    Maps kernel digest × device to the best {!Gpusim.Autotune} entry found
    by a previous sweep, so a second run of the same kernel on the same
    device starts from the known-best memory configuration instead of
    re-timing all eight Fig 8 configurations.  Format version 3 can also
    carry the winning rewrite schedule of a beam search, so a warm compile
    replays the stored sequence instead of re-searching; version 4 can
    carry the multi-device placement chosen by {!Lime_sched.Search}, so a
    warm [--multi-device auto] run replays the stored placement.  One
    small text file per (digest, device) pair; the format is documented in
    [doc/OPTIMIZER.md], [doc/SERVICE.md] and [doc/SCHEDULER.md], older
    versions load with the missing fields [None], and any malformed file
    is treated as a miss. *)

(** Headline counters of the winning configuration — the *why* behind the
    stored best, shown by [limec --sweep]. *)
type headline = {
  th_occupancy : float;
  th_bank_replays : float;
  th_roofline : string;  (** {!Gpusim.Counters.roofline_name} of the winner *)
}

type record = {
  tr_config_name : string;  (** display name, e.g. ["Local+Conflicts removed"] *)
  tr_config : Lime_gpu.Memopt.config;
  tr_time_s : float;  (** modelled kernel time when the tuning was recorded *)
  tr_headline : headline option;
      (** [None] when loaded from a version-1 store file *)
  tr_sequence : string list option;
      (** winning rewrite schedule found by {!Lime_rewrite.Search} —
          [Some []] means a search ran and the baseline won; [None] means
          no search was recorded (plain Fig 8 sweeps, and any file written
          before format version 3) *)
  tr_placement : string option;
      (** winning multi-device placement ({!Lime_sched.Placement.to_spec})
          found by {!Lime_sched.Search} — [None] for records that are not
          placement records, and any file written before format
          version 4 *)
}

type t

val open_ : string -> t
(** Open (creating if needed) a store rooted at the given directory. *)

val root : t -> string

val path : t -> digest:Digest.t -> device:string -> string
(** On-disk path for one entry (device names are sanitized for use in
    filenames). *)

val store : t -> digest:Digest.t -> device:string -> record -> unit
val load : t -> digest:Digest.t -> device:string -> record option

val cached_sweep :
  t ->
  Gpusim.Device.t ->
  digest:Digest.t ->
  device:string ->
  ?sweep:
    (Gpusim.Device.t ->
    Lime_gpu.Kernel.kernel ->
    shapes:(string * int array) list ->
    scalars:(string * float) list ->
    Gpusim.Autotune.entry list) ->
  Lime_gpu.Kernel.kernel ->
  shapes:(string * int array) list ->
  scalars:(string * float) list ->
  Gpusim.Autotune.entry list * [ `Hit of record | `Miss ]
(** The tunestore-aware version of {!Gpusim.Autotune.sweep}.  On a hit the
    stored best configuration is re-timed alone and returned as a single
    entry; on a miss all eight configurations are swept and the winner is
    persisted for next time.  [sweep] (default {!Gpusim.Autotune.sweep})
    overrides how a miss is swept — {!Service.sweep} supplies its
    pool-parallel variant. *)
