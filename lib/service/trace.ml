(** Span-based tracer with Chrome trace-event export — see the interface.

    Concurrency model: every domain that records through a tracer gets its
    own span buffer and its own open-span stack (domain-local storage), so
    recording never takes a lock on the hot path beyond the shared clock.
    Span ids come from one atomic counter — allocation order is global
    begin order — and the per-domain buffers are merged (sorted by id) on
    every read ({!spans}, export, views), yielding the single monotonic
    timeline.  Parent links never cross domains: a span's parent is the
    innermost open span {e of its own domain}. *)

module Pipeline = Lime_gpu.Pipeline
module Engine = Lime_runtime.Engine
module Comm = Lime_runtime.Comm
module Search = Lime_rewrite.Search

type span = {
  sp_id : int;
  sp_parent : int;
  sp_name : string;
  sp_cat : string;
  mutable sp_args : (string * string) list;
  sp_begin_us : float;
  mutable sp_end_us : float;
}

(** One domain's recording state: spans it began, innermost open first. *)
type dstate = {
  mutable ds_spans : span list;  (** reverse begin order *)
  mutable ds_stack : span list;  (** innermost open span first *)
}

type t = {
  mutable tr_enabled : bool;
  tr_mu : Mutex.t;  (** guards the clock state and the dstate registry *)
  tr_states : dstate list ref;  (** every domain that has recorded *)
  tr_dls : dstate Domain.DLS.key;
  tr_next_id : int Atomic.t;
  mutable tr_last_us : float;  (** last timestamp handed out (under tr_mu) *)
  mutable tr_skew_us : float;  (** added to the clock by {!advance_to} *)
  mutable tr_t0 : float;
  tr_clock : unit -> float;
}

let create ?(clock = Sys.time) () =
  let tr_mu = Mutex.create () in
  let tr_states = ref [] in
  let tr_dls =
    Domain.DLS.new_key (fun () ->
        let ds = { ds_spans = []; ds_stack = [] } in
        Mutex.lock tr_mu;
        tr_states := ds :: !tr_states;
        Mutex.unlock tr_mu;
        ds)
  in
  {
    tr_enabled = true;
    tr_mu;
    tr_states;
    tr_dls;
    tr_next_id = Atomic.make 0;
    tr_last_us = 0.0;
    tr_skew_us = 0.0;
    tr_t0 = clock ();
    tr_clock = clock;
  }

let default =
  let t = create () in
  t.tr_enabled <- false;
  t

let enabled t = t.tr_enabled
let set_enabled t on = t.tr_enabled <- on

let dstate t = Domain.DLS.get t.tr_dls

let reset t =
  Mutex.lock t.tr_mu;
  List.iter
    (fun ds ->
      ds.ds_spans <- [];
      ds.ds_stack <- [])
    !(t.tr_states);
  Atomic.set t.tr_next_id 0;
  t.tr_last_us <- 0.0;
  t.tr_skew_us <- 0.0;
  t.tr_t0 <- t.tr_clock ();
  Mutex.unlock t.tr_mu

(* Strictly monotonic across all domains: coarse clocks (Sys.time often
   ticks in ms) are nudged forward 10ns per event so span ordering is
   always well-formed.  The clock state is shared, hence the mutex. *)
let now_us t =
  Mutex.lock t.tr_mu;
  let real = ((t.tr_clock () -. t.tr_t0) *. 1e6) +. t.tr_skew_us in
  let v = if real <= t.tr_last_us then t.tr_last_us +. 0.01 else real in
  t.tr_last_us <- v;
  Mutex.unlock t.tr_mu;
  v

let advance_to t ts_us =
  Mutex.lock t.tr_mu;
  if ts_us > t.tr_last_us then begin
    t.tr_skew_us <- t.tr_skew_us +. (ts_us -. t.tr_last_us);
    t.tr_last_us <- ts_us
  end;
  Mutex.unlock t.tr_mu

let last_us t =
  Mutex.lock t.tr_mu;
  let v = t.tr_last_us in
  Mutex.unlock t.tr_mu;
  v

let push t (ds : dstate) ~cat ~args ~begin_us ~end_us name =
  let sp =
    {
      sp_id = Atomic.fetch_and_add t.tr_next_id 1;
      sp_parent = (match ds.ds_stack with [] -> -1 | p :: _ -> p.sp_id);
      sp_name = name;
      sp_cat = cat;
      sp_args = args;
      sp_begin_us = begin_us;
      sp_end_us = end_us;
    }
  in
  ds.ds_spans <- sp :: ds.ds_spans;
  sp

let begin_span t ?(cat = "") ?(args = []) ?ts_us name =
  if t.tr_enabled then begin
    let ds = dstate t in
    let ts = match ts_us with Some ts -> ts | None -> now_us t in
    let sp = push t ds ~cat ~args ~begin_us:ts ~end_us:(-1.0) name in
    ds.ds_stack <- sp :: ds.ds_stack
  end

let end_span t ?(args = []) ?ts_us name =
  if t.tr_enabled then begin
    let ds = dstate t in
    if List.exists (fun s -> s.sp_name = name) ds.ds_stack then begin
      let ts = match ts_us with Some ts -> ts | None -> now_us t in
      advance_to t ts;
      let rec pop = function
        | [] -> []
        | sp :: rest ->
            sp.sp_end_us <- ts;
            if sp.sp_name = name then begin
              sp.sp_args <- sp.sp_args @ args;
              rest
            end
            else pop rest (* close abandoned children at the same instant *)
      in
      ds.ds_stack <- pop ds.ds_stack
    end
  end

let with_span t ?cat ?args name f =
  if not t.tr_enabled then f ()
  else begin
    begin_span t ?cat ?args name;
    Fun.protect ~finally:(fun () -> end_span t name) f
  end

let complete t ?(cat = "") ?(args = []) ?ts_us ~dur_us name =
  if t.tr_enabled then begin
    let ds = dstate t in
    let ts = match ts_us with Some ts -> ts | None -> now_us t in
    ignore (push t ds ~cat ~args ~begin_us:ts ~end_us:(ts +. dur_us) name)
  end

(* Merge the per-domain buffers into the one timeline.  Ids are allocated
   from a single atomic counter at begin time, so ascending id order *is*
   global begin order. *)
let spans t =
  Mutex.lock t.tr_mu;
  let all =
    List.concat_map (fun ds -> ds.ds_spans) !(t.tr_states)
  in
  Mutex.unlock t.tr_mu;
  List.sort (fun a b -> compare a.sp_id b.sp_id) all

let open_depth t =
  Mutex.lock t.tr_mu;
  let n =
    List.fold_left (fun acc ds -> acc + List.length ds.ds_stack) 0 !(t.tr_states)
  in
  Mutex.unlock t.tr_mu;
  n

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_chrome_json t =
  let now = last_us t in
  let closed_end sp = if sp.sp_end_us < 0.0 then now else sp.sp_end_us in
  let sorted =
    List.sort
      (fun a b -> compare (a.sp_begin_us, a.sp_id) (b.sp_begin_us, b.sp_id))
      (spans t)
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  Buffer.add_string b
    "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"process_name\",\
     \"args\":{\"name\":\"lime\"}}";
  List.iter
    (fun sp ->
      Buffer.add_string b
        (Printf.sprintf
           ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\"%s\",\
            \"cat\":\"%s\",\"ts\":%.3f,\"dur\":%.3f"
           (json_escape sp.sp_name)
           (json_escape (if sp.sp_cat = "" then "default" else sp.sp_cat))
           sp.sp_begin_us
           (closed_end sp -. sp.sp_begin_us));
      if sp.sp_args <> [] then begin
        Buffer.add_string b ",\"args\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_string b
              (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          sp.sp_args;
        Buffer.add_char b '}'
      end;
      Buffer.add_char b '}')
    sorted;
  Buffer.add_string b "]}\n";
  Buffer.contents b

let write_chrome t file =
  Out_channel.with_open_text file (fun oc ->
      Out_channel.output_string oc (to_chrome_json t))

(* ------------------------------------------------------------------ *)
(* Terminal views                                                      *)
(* ------------------------------------------------------------------ *)

let duration_us ~now sp =
  (if sp.sp_end_us < 0.0 then now else sp.sp_end_us) -. sp.sp_begin_us

let pretty_us us =
  if us >= 1e6 then Printf.sprintf "%.2fs" (us /. 1e6)
  else if us >= 1e3 then Printf.sprintf "%.2fms" (us /. 1e3)
  else Printf.sprintf "%.2fus" us

let summary ?(top = 10) t =
  let now = last_us t in
  let all = spans t in
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun sp ->
      let dur, n =
        Option.value (Hashtbl.find_opt tbl sp.sp_name) ~default:(0.0, 0)
      in
      Hashtbl.replace tbl sp.sp_name (dur +. duration_us ~now sp, n + 1))
    all;
  let timeline =
    List.fold_left (fun acc sp -> Float.max acc
        (if sp.sp_end_us < 0.0 then now else sp.sp_end_us))
      0.0 all
  in
  let rows =
    Hashtbl.fold (fun name (dur, n) acc -> (name, dur, n) :: acc) tbl []
    |> List.sort (fun (an, a, _) (bn, b, _) -> compare (b, an) (a, bn))
  in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "top spans by inclusive time (%d distinct, timeline %s):\n"
       (List.length rows) (pretty_us timeline));
  Buffer.add_string b
    (Printf.sprintf "  %10s %6s %6s  %s\n" "inclusive" "share" "count" "span");
  List.iteri
    (fun i (name, dur, n) ->
      if i < top then
        Buffer.add_string b
          (Printf.sprintf "  %10s %5.1f%% %6d  %s\n" (pretty_us dur)
             (if timeline <= 0.0 then 0.0 else 100.0 *. dur /. timeline)
             n name))
    rows;
  Buffer.contents b

let flame t =
  let now = last_us t in
  let all = spans t in
  let b = Buffer.create 512 in
  let rec walk depth parent =
    List.iter
      (fun sp ->
        if sp.sp_parent = parent then begin
          Buffer.add_string b
            (Printf.sprintf "%s%s %s[%s]\n"
               (String.make (2 * depth) ' ')
               sp.sp_name
               (pretty_us (duration_us ~now sp) ^ " ")
               (if sp.sp_cat = "" then "default" else sp.sp_cat));
          walk (depth + 1) sp.sp_id
        end)
      all
  in
  walk 0 (-1);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)
(* ------------------------------------------------------------------ *)

let leg_order ph =
  [
    ("java_marshal", ph.Comm.java_marshal_s);
    ("jni", ph.Comm.jni_s);
    ("c_marshal", ph.Comm.c_marshal_s);
    ("setup", ph.Comm.setup_s);
    ("pcie", ph.Comm.pcie_s);
    ("kernel", ph.Comm.kernel_s);
    ("host", ph.Comm.host_s);
  ]

(** One task firing as a model-time span tree: the firing span covers the
    modelled total, each {!Comm.phases} leg is a child laid out
    sequentially in Fig 6 order, and the kernel leg of a device firing
    carries the launch attributes from the device model. *)
let emit_firing tracer (fi : Engine.firing_info) =
  if tracer.tr_enabled then begin
    let total_us = Comm.total fi.fi_phases *. 1e6 in
    let t0 = now_us tracer in
    begin_span tracer ~cat:"firing" ~ts_us:t0
      ~args:
        [
          ("task", fi.fi_task);
          ("device", if fi.fi_device then "true" else "false");
        ]
      ("firing." ^ fi.fi_task);
    let off = ref t0 in
    List.iter
      (fun (leg, seconds) ->
        let dur_us = seconds *. 1e6 in
        let args =
          match (leg, fi.fi_dev, fi.fi_profile, fi.fi_breakdown) with
          | "kernel", Some d, Some prof, Some bd ->
              Gpusim.Model.launch_attrs d prof fi.fi_bindings
              @ [
                  ("compute_s", Printf.sprintf "%.3g" bd.Gpusim.Model.bd_compute_s);
                  ("global_s", Printf.sprintf "%.3g" bd.Gpusim.Model.bd_global_s);
                  ("local_s", Printf.sprintf "%.3g" bd.Gpusim.Model.bd_local_s);
                  ("constant_s", Printf.sprintf "%.3g" bd.Gpusim.Model.bd_constant_s);
                  ("image_s", Printf.sprintf "%.3g" bd.Gpusim.Model.bd_image_s);
                  ("launch_s", Printf.sprintf "%.3g" bd.Gpusim.Model.bd_launch_s);
                ]
              |> fun base ->
              (* counters ride along, minus keys launch_attrs already set *)
              base
              @ (match fi.fi_counters with
                | Some c ->
                    List.filter
                      (fun (k, _) -> not (List.mem_assoc k base))
                      (Gpusim.Counters.span_attrs c)
                | None -> [])
          | _ -> []
        in
        complete tracer ~cat:"comm" ~args ~ts_us:!off ~dur_us ("comm." ^ leg);
        off := !off +. dur_us)
      (leg_order fi.fi_phases);
    end_span tracer ~ts_us:(t0 +. total_us) ("firing." ^ fi.fi_task);
    advance_to tracer (t0 +. total_us)
  end

let install ?(tracer = default) () =
  Pipeline.on_phase ~key:"trace" (fun ~phase ev ->
      match ev with
      | `Begin -> begin_span tracer ~cat:"compile" ("pipeline." ^ phase)
      | `End seconds ->
          end_span tracer
            ~args:[ ("cpu_s", Printf.sprintf "%.3g" seconds) ]
            ("pipeline." ^ phase));
  Engine.on_firing ~key:"trace" (emit_firing tracer);
  (* rewrite.* spans: the beam search brackets as one wall-clock span with
     an instant child per level; a replay of a stored schedule is a single
     instant.  All carry their key facts as args. *)
  Search.on_search ~key:"trace" (fun ev ->
      let seq_arg seq = ("sequence", Search.seq_str seq) in
      match ev with
      | Search.EBegin { kernel; device; width; depth } ->
          begin_span tracer ~cat:"rewrite"
            ~args:
              [
                ("kernel", kernel);
                ("device", device);
                ("width", string_of_int width);
                ("depth", string_of_int depth);
              ]
            "rewrite.search"
      | Search.ELevel { level; frontier; evals; best_time_s; best_sequence } ->
          complete tracer ~cat:"rewrite" ~dur_us:1.0
            ~args:
              [
                ("level", string_of_int level);
                ("frontier", string_of_int frontier);
                ("evals", string_of_int evals);
                ("best_time_s", Printf.sprintf "%.3e" best_time_s);
                seq_arg best_sequence;
              ]
            "rewrite.level"
      | Search.EEnd { evals; best_time_s; best_sequence; improved } ->
          end_span tracer
            ~args:
              [
                ("evals", string_of_int evals);
                ("best_time_s", Printf.sprintf "%.3e" best_time_s);
                seq_arg best_sequence;
                ("improved", string_of_bool improved);
              ]
            "rewrite.search"
      | Search.EReplay { kernel; sequence; ok } ->
          complete tracer ~cat:"rewrite" ~dur_us:1.0
            ~args:
              [
                ("kernel", kernel);
                seq_arg sequence;
                ("ok", string_of_bool ok);
              ]
            "rewrite.replay")

let uninstall () =
  Pipeline.remove_phase_observer "trace";
  Engine.remove_firing_observer "trace";
  Search.remove_search_observer "trace"

let with_observers ?(tracer = default) f =
  let was = tracer.tr_enabled in
  tracer.tr_enabled <- true;
  install ~tracer ();
  Fun.protect
    ~finally:(fun () ->
      uninstall ();
      tracer.tr_enabled <- was)
    f
