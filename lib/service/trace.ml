(** Span-based tracer with Chrome trace-event export — see the interface.

    Concurrency model: every domain that records through a tracer gets its
    own span buffer and its own open-span stack (domain-local storage), so
    recording never takes a lock on the hot path beyond the shared clock.
    Span ids come from one atomic counter — allocation order is global
    begin order — and the per-domain buffers are merged (sorted by id) on
    every read ({!spans}, export, views), yielding the single monotonic
    timeline.  Parent links never cross domains: a span's parent is the
    innermost open span {e of its own domain}. *)

module Pipeline = Lime_gpu.Pipeline
module Engine = Lime_runtime.Engine
module Comm = Lime_runtime.Comm
module Search = Lime_rewrite.Search

type span = {
  sp_id : int;
  sp_parent : int;
  sp_name : string;
  sp_cat : string;
  mutable sp_args : (string * string) list;
  sp_begin_us : float;
  mutable sp_end_us : float;
}

(** One domain's recording state: spans it began, innermost open first. *)
type dstate = {
  mutable ds_spans : span list;  (** reverse begin order *)
  mutable ds_stack : span list;  (** innermost open span first *)
  mutable ds_count : int;  (** [List.length ds_spans], kept incrementally *)
}

type t = {
  mutable tr_enabled : bool;
  tr_mu : Mutex.t;  (** guards the clock state and the dstate registry *)
  tr_states : dstate list ref;  (** every domain that has recorded *)
  tr_dls : dstate Domain.DLS.key;
  tr_next_id : int Atomic.t;
  mutable tr_last_us : float;  (** last timestamp handed out (under tr_mu) *)
  mutable tr_skew_us : float;  (** added to the clock by {!advance_to} *)
  mutable tr_t0 : float;
  tr_clock : unit -> float;
  mutable tr_trace_id : string;  (** 32 lowercase hex chars *)
  tr_limit : int Atomic.t;  (** per-domain retained-span cap, 0 = unbounded *)
  tr_dropped : int Atomic.t;  (** spans evicted by the retention cap *)
}

(* 128-bit trace identity.  [Random.State.make_self_init] seeds from
   time + pid; the global counter breaks ties between ids minted in the
   same clock tick. *)
let trace_id_ctr = Atomic.make 0

let fresh_trace_id () =
  let st = Random.State.make_self_init () in
  let mix =
    Int64.mul 0x9E3779B97F4A7C15L
      (Int64.of_int (1 + Atomic.fetch_and_add trace_id_ctr 1))
  in
  Printf.sprintf "%016Lx%016Lx"
    (Int64.logxor (Random.State.bits64 st) mix)
    (Random.State.bits64 st)
  |> String.lowercase_ascii

let valid_trace_id s =
  String.length s = 32
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       s

let default_retention = 65536

let create ?(clock = Sys.time) () =
  let tr_mu = Mutex.create () in
  let tr_states = ref [] in
  let tr_dls =
    Domain.DLS.new_key (fun () ->
        let ds = { ds_spans = []; ds_stack = []; ds_count = 0 } in
        Mutex.lock tr_mu;
        tr_states := ds :: !tr_states;
        Mutex.unlock tr_mu;
        ds)
  in
  {
    tr_enabled = true;
    tr_mu;
    tr_states;
    tr_dls;
    tr_next_id = Atomic.make 0;
    tr_last_us = 0.0;
    tr_skew_us = 0.0;
    tr_t0 = clock ();
    tr_clock = clock;
    tr_trace_id = fresh_trace_id ();
    tr_limit = Atomic.make default_retention;
    tr_dropped = Atomic.make 0;
  }

let default =
  let t = create () in
  t.tr_enabled <- false;
  t

let enabled t = t.tr_enabled
let set_enabled t on = t.tr_enabled <- on

let trace_id t =
  Mutex.lock t.tr_mu;
  let id = t.tr_trace_id in
  Mutex.unlock t.tr_mu;
  id

let set_trace_id t id =
  Mutex.lock t.tr_mu;
  t.tr_trace_id <- (if valid_trace_id id then id else fresh_trace_id ());
  Mutex.unlock t.tr_mu

let retention t = Atomic.get t.tr_limit
let set_retention t n = Atomic.set t.tr_limit (max 0 n)
let dropped_spans t = Atomic.get t.tr_dropped

let dstate t = Domain.DLS.get t.tr_dls

let reset t =
  Mutex.lock t.tr_mu;
  List.iter
    (fun ds ->
      ds.ds_spans <- [];
      ds.ds_stack <- [];
      ds.ds_count <- 0)
    !(t.tr_states);
  Atomic.set t.tr_next_id 0;
  Atomic.set t.tr_dropped 0;
  t.tr_last_us <- 0.0;
  t.tr_skew_us <- 0.0;
  t.tr_t0 <- t.tr_clock ();
  t.tr_trace_id <- fresh_trace_id ();
  Mutex.unlock t.tr_mu

(* Strictly monotonic across all domains: coarse clocks (Sys.time often
   ticks in ms) are nudged forward 10ns per event so span ordering is
   always well-formed.  The clock state is shared, hence the mutex. *)
let now_us t =
  Mutex.lock t.tr_mu;
  let real = ((t.tr_clock () -. t.tr_t0) *. 1e6) +. t.tr_skew_us in
  let v = if real <= t.tr_last_us then t.tr_last_us +. 0.01 else real in
  t.tr_last_us <- v;
  Mutex.unlock t.tr_mu;
  v

let advance_to t ts_us =
  Mutex.lock t.tr_mu;
  if ts_us > t.tr_last_us then begin
    t.tr_skew_us <- t.tr_skew_us +. (ts_us -. t.tr_last_us);
    t.tr_last_us <- ts_us
  end;
  Mutex.unlock t.tr_mu

let last_us t =
  Mutex.lock t.tr_mu;
  let v = t.tr_last_us in
  Mutex.unlock t.tr_mu;
  v

(* Retention ring: when a domain's buffer outgrows the cap, drop the
   oldest *closed* spans down to 7/8 of the cap (open spans survive — the
   stack still references them).  Amortized O(1) per push: an O(n) sweep
   runs only once per [limit/8] pushes. *)
let enforce_limit t (ds : dstate) =
  let limit = Atomic.get t.tr_limit in
  if limit > 0 && ds.ds_count > limit then begin
    let keep = limit - (limit / 8) in
    let kept = ref 0 and dropped = ref 0 in
    let rec go = function
      | [] -> []
      | sp :: rest ->
          if !kept < keep || sp.sp_end_us < 0.0 then begin
            incr kept;
            sp :: go rest
          end
          else begin
            incr dropped;
            go rest
          end
    in
    ds.ds_spans <- go ds.ds_spans;
    ds.ds_count <- !kept;
    if !dropped > 0 then ignore (Atomic.fetch_and_add t.tr_dropped !dropped)
  end

let push t (ds : dstate) ~cat ~args ~begin_us ~end_us name =
  let sp =
    {
      sp_id = Atomic.fetch_and_add t.tr_next_id 1;
      sp_parent = (match ds.ds_stack with [] -> -1 | p :: _ -> p.sp_id);
      sp_name = name;
      sp_cat = cat;
      sp_args = args;
      sp_begin_us = begin_us;
      sp_end_us = end_us;
    }
  in
  ds.ds_spans <- sp :: ds.ds_spans;
  ds.ds_count <- ds.ds_count + 1;
  enforce_limit t ds;
  sp

let begin_span t ?(cat = "") ?(args = []) ?ts_us name =
  if t.tr_enabled then begin
    let ds = dstate t in
    let ts = match ts_us with Some ts -> ts | None -> now_us t in
    let sp = push t ds ~cat ~args ~begin_us:ts ~end_us:(-1.0) name in
    ds.ds_stack <- sp :: ds.ds_stack
  end

let end_span t ?(args = []) ?ts_us name =
  if t.tr_enabled then begin
    let ds = dstate t in
    if List.exists (fun s -> s.sp_name = name) ds.ds_stack then begin
      let ts = match ts_us with Some ts -> ts | None -> now_us t in
      advance_to t ts;
      let rec pop = function
        | [] -> []
        | sp :: rest ->
            sp.sp_end_us <- ts;
            if sp.sp_name = name then begin
              sp.sp_args <- sp.sp_args @ args;
              rest
            end
            else pop rest (* close abandoned children at the same instant *)
      in
      ds.ds_stack <- pop ds.ds_stack
    end
  end

let with_span t ?cat ?args name f =
  if not t.tr_enabled then f ()
  else begin
    begin_span t ?cat ?args name;
    Fun.protect ~finally:(fun () -> end_span t name) f
  end

let complete t ?(cat = "") ?(args = []) ?ts_us ~dur_us name =
  if t.tr_enabled then begin
    let ds = dstate t in
    let ts = match ts_us with Some ts -> ts | None -> now_us t in
    ignore (push t ds ~cat ~args ~begin_us:ts ~end_us:(ts +. dur_us) name)
  end

let current_span_id t =
  if not t.tr_enabled then -1
  else
    match (dstate t).ds_stack with [] -> -1 | sp :: _ -> sp.sp_id

(* ------------------------------------------------------------------ *)
(* Cross-process span hand-off                                         *)
(* ------------------------------------------------------------------ *)

(* [collect] brackets [f] with an id watermark: anything this domain
   recorded with an id at or past the mark was begun during [f].  The
   walk starts from the new buffer head and stops at the pre-[f] head —
   O(spans recorded during [f]), not O(buffer) — with the id guard
   covering the case where the retention ring rebuilt the list (physical
   equality alone would not terminate early then). *)
let collect t f =
  let ds = dstate t in
  let mark = Atomic.get t.tr_next_id in
  let old_head = ds.ds_spans in
  let r = f () in
  let rec take acc l =
    if l == old_head then acc
    else
      match l with
      | [] -> acc
      | sp :: rest -> if sp.sp_id >= mark then take (sp :: acc) rest else acc
  in
  (r, List.sort (fun a b -> compare a.sp_id b.sp_id) (take [] ds.ds_spans))

let graft t ?at_us ~parent spans =
  if (not t.tr_enabled) || spans = [] then 0
  else begin
    let ds = dstate t in
    let base = match at_us with Some v -> v | None -> now_us t in
    (* Remote span ids live in the remote process's id space: remint every
       id locally, rewire parents through the map, and hang remote roots
       (or spans with dangling parents) off [parent]. *)
    let map = Hashtbl.create 16 in
    List.iter
      (fun sp ->
        Hashtbl.replace map sp.sp_id (Atomic.fetch_and_add t.tr_next_id 1))
      spans;
    let max_end = ref base in
    let grafted =
      List.map
        (fun sp ->
          let id = Hashtbl.find map sp.sp_id in
          let p =
            match Hashtbl.find_opt map sp.sp_parent with
            | Some p -> p
            | None -> parent
          in
          let b = Float.max 0.0 sp.sp_begin_us in
          let e = if sp.sp_end_us < b then b else sp.sp_end_us in
          let sp' =
            {
              sp with
              sp_id = id;
              sp_parent = p;
              sp_begin_us = base +. b;
              sp_end_us = base +. e;
            }
          in
          if sp'.sp_end_us > !max_end then max_end := sp'.sp_end_us;
          sp')
        spans
    in
    List.iter
      (fun sp ->
        ds.ds_spans <- sp :: ds.ds_spans;
        ds.ds_count <- ds.ds_count + 1)
      grafted;
    enforce_limit t ds;
    advance_to t !max_end;
    List.length grafted
  end

(* Binary span-buffer codec — the payload the daemon ships back inside a
   Result frame.  Format (all integers big-endian):
     u8  format version (1)
     u32 span count
     per span: u32 id · u32 parent (0xffffffff = -1) · 8-byte IEEE-754
       begin/end (microseconds) · name · cat · u16 arg count · per arg
       key/value — strings as u32 length + bytes.
   [spans_of_wire] is total: every malformed input maps to [Error _]. *)

let wire_format_version = 1
let max_wire_spans = 1_000_000

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u16 b v =
  put_u8 b (v lsr 8);
  put_u8 b v

let put_u32 b v =
  put_u16 b (v lsr 16);
  put_u16 b v

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_f64 b v =
  let bits = Int64.bits_of_float v in
  for i = 7 downto 0 do
    put_u8 b (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff)
  done

let spans_to_wire spans =
  let spans =
    if List.length spans > max_wire_spans then
      List.filteri (fun i _ -> i < max_wire_spans) spans
    else spans
  in
  let b = Buffer.create 1024 in
  put_u8 b wire_format_version;
  put_u32 b (List.length spans);
  List.iter
    (fun sp ->
      put_u32 b (sp.sp_id land 0xffffffff);
      put_u32 b (if sp.sp_parent < 0 then 0xffffffff else sp.sp_parent land 0xffffffff);
      put_f64 b sp.sp_begin_us;
      put_f64 b sp.sp_end_us;
      put_str b sp.sp_name;
      put_str b sp.sp_cat;
      put_u16 b (min 0xffff (List.length sp.sp_args));
      List.iteri
        (fun i (k, v) ->
          if i < 0xffff then begin
            put_str b k;
            put_str b v
          end)
        sp.sp_args)
    spans;
  Buffer.contents b

exception Bad_buf of string

let spans_of_wire s =
  let len = String.length s in
  let pos = ref 0 in
  let need n what =
    if len - !pos < n then raise (Bad_buf ("truncated " ^ what))
  in
  let get_u8 what =
    need 1 what;
    let v = Char.code s.[!pos] in
    incr pos;
    v
  in
  let get_u16 what =
    let hi = get_u8 what in
    (hi lsl 8) lor get_u8 what
  in
  let get_u32 what =
    let hi = get_u16 what in
    (hi lsl 16) lor get_u16 what
  in
  let get_str what =
    let n = get_u32 what in
    need n what;
    let v = String.sub s !pos n in
    pos := !pos + n;
    v
  in
  let get_f64 what =
    need 8 what;
    let bits = ref 0L in
    for _ = 1 to 8 do
      bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (get_u8 what))
    done;
    Int64.float_of_bits !bits
  in
  try
    let v = get_u8 "format version" in
    if v <> wire_format_version then
      raise (Bad_buf (Printf.sprintf "unsupported span format %d" v));
    let count = get_u32 "span count" in
    if count > max_wire_spans then raise (Bad_buf "span count out of range");
    let out = ref [] in
    for _ = 1 to count do
      let sp_id = get_u32 "span id" in
      let parent = get_u32 "span parent" in
      let sp_parent = if parent = 0xffffffff then -1 else parent in
      let sp_begin_us = get_f64 "span begin" in
      let sp_end_us = get_f64 "span end" in
      let sp_name = get_str "span name" in
      let sp_cat = get_str "span cat" in
      let nargs = get_u16 "arg count" in
      let args = ref [] in
      for _ = 1 to nargs do
        let k = get_str "arg key" in
        let v = get_str "arg value" in
        args := (k, v) :: !args
      done;
      if Float.is_nan sp_begin_us || Float.is_nan sp_end_us then
        raise (Bad_buf "non-finite span timestamp");
      out :=
        {
          sp_id;
          sp_parent;
          sp_name;
          sp_cat;
          sp_args = List.rev !args;
          sp_begin_us;
          sp_end_us;
        }
        :: !out
    done;
    if !pos <> len then raise (Bad_buf "trailing bytes in span buffer");
    Ok (List.rev !out)
  with Bad_buf msg -> Error msg

(* Merge the per-domain buffers into the one timeline.  Ids are allocated
   from a single atomic counter at begin time, so ascending id order *is*
   global begin order. *)
let spans t =
  Mutex.lock t.tr_mu;
  let all =
    List.concat_map (fun ds -> ds.ds_spans) !(t.tr_states)
  in
  Mutex.unlock t.tr_mu;
  List.sort (fun a b -> compare a.sp_id b.sp_id) all

let open_depth t =
  Mutex.lock t.tr_mu;
  let n =
    List.fold_left (fun acc ds -> acc + List.length ds.ds_stack) 0 !(t.tr_states)
  in
  Mutex.unlock t.tr_mu;
  n

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_chrome_json t =
  let now = last_us t in
  let closed_end sp = if sp.sp_end_us < 0.0 then now else sp.sp_end_us in
  let sorted =
    List.sort
      (fun a b -> compare (a.sp_begin_us, a.sp_id) (b.sp_begin_us, b.sp_id))
      (spans t)
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"traceId\":\"%s\"},\
        \"traceEvents\":["
       (json_escape (trace_id t)));
  Buffer.add_string b
    "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"process_name\",\
     \"args\":{\"name\":\"lime\"}}";
  List.iter
    (fun sp ->
      Buffer.add_string b
        (Printf.sprintf
           ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\"%s\",\
            \"cat\":\"%s\",\"ts\":%.3f,\"dur\":%.3f"
           (json_escape sp.sp_name)
           (json_escape (if sp.sp_cat = "" then "default" else sp.sp_cat))
           sp.sp_begin_us
           (closed_end sp -. sp.sp_begin_us));
      if sp.sp_args <> [] then begin
        Buffer.add_string b ",\"args\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_string b
              (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          sp.sp_args;
        Buffer.add_char b '}'
      end;
      Buffer.add_char b '}')
    sorted;
  Buffer.add_string b "]}\n";
  Buffer.contents b

let write_chrome t file =
  Out_channel.with_open_text file (fun oc ->
      Out_channel.output_string oc (to_chrome_json t))

(* ------------------------------------------------------------------ *)
(* Terminal views                                                      *)
(* ------------------------------------------------------------------ *)

let duration_us ~now sp =
  (if sp.sp_end_us < 0.0 then now else sp.sp_end_us) -. sp.sp_begin_us

let pretty_us us =
  if us >= 1e6 then Printf.sprintf "%.2fs" (us /. 1e6)
  else if us >= 1e3 then Printf.sprintf "%.2fms" (us /. 1e3)
  else Printf.sprintf "%.2fus" us

let summary ?(top = 10) t =
  let now = last_us t in
  let all = spans t in
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun sp ->
      let dur, n =
        Option.value (Hashtbl.find_opt tbl sp.sp_name) ~default:(0.0, 0)
      in
      Hashtbl.replace tbl sp.sp_name (dur +. duration_us ~now sp, n + 1))
    all;
  let timeline =
    List.fold_left (fun acc sp -> Float.max acc
        (if sp.sp_end_us < 0.0 then now else sp.sp_end_us))
      0.0 all
  in
  let rows =
    Hashtbl.fold (fun name (dur, n) acc -> (name, dur, n) :: acc) tbl []
    |> List.sort (fun (an, a, _) (bn, b, _) -> compare (b, an) (a, bn))
  in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "top spans by inclusive time (%d distinct, timeline %s):\n"
       (List.length rows) (pretty_us timeline));
  Buffer.add_string b
    (Printf.sprintf "  %10s %6s %6s  %s\n" "inclusive" "share" "count" "span");
  List.iteri
    (fun i (name, dur, n) ->
      if i < top then
        Buffer.add_string b
          (Printf.sprintf "  %10s %5.1f%% %6d  %s\n" (pretty_us dur)
             (if timeline <= 0.0 then 0.0 else 100.0 *. dur /. timeline)
             n name))
    rows;
  Buffer.contents b

let flame t =
  let now = last_us t in
  let all = spans t in
  let b = Buffer.create 512 in
  let rec walk depth parent =
    List.iter
      (fun sp ->
        if sp.sp_parent = parent then begin
          Buffer.add_string b
            (Printf.sprintf "%s%s %s[%s]\n"
               (String.make (2 * depth) ' ')
               sp.sp_name
               (pretty_us (duration_us ~now sp) ^ " ")
               (if sp.sp_cat = "" then "default" else sp.sp_cat));
          walk (depth + 1) sp.sp_id
        end)
      all
  in
  walk 0 (-1);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)
(* ------------------------------------------------------------------ *)

let leg_order ph =
  [
    ("java_marshal", ph.Comm.java_marshal_s);
    ("jni", ph.Comm.jni_s);
    ("c_marshal", ph.Comm.c_marshal_s);
    ("setup", ph.Comm.setup_s);
    ("pcie", ph.Comm.pcie_s);
    ("kernel", ph.Comm.kernel_s);
    ("host", ph.Comm.host_s);
  ]

(** One task firing as a model-time span tree: the firing span covers the
    modelled total, each {!Comm.phases} leg is a child laid out
    sequentially in Fig 6 order, and the kernel leg of a device firing
    carries the launch attributes from the device model. *)
let emit_firing tracer (fi : Engine.firing_info) =
  if tracer.tr_enabled then begin
    let total_us = Comm.total fi.fi_phases *. 1e6 in
    let t0 = now_us tracer in
    begin_span tracer ~cat:"firing" ~ts_us:t0
      ~args:
        ([
           ("task", fi.fi_task);
           ("device", if fi.fi_device then "true" else "false");
         ]
        @
        (* which device, so multi-device runs attribute firings per device *)
        match fi.fi_dev with
        | Some d -> [ ("dev", d.Gpusim.Device.name) ]
        | None -> [])
      ("firing." ^ fi.fi_task);
    let off = ref t0 in
    List.iter
      (fun (leg, seconds) ->
        let dur_us = seconds *. 1e6 in
        let args =
          match (leg, fi.fi_dev, fi.fi_profile, fi.fi_breakdown) with
          | "kernel", Some d, Some prof, Some bd ->
              Gpusim.Model.launch_attrs d prof fi.fi_bindings
              @ [
                  ("compute_s", Printf.sprintf "%.3g" bd.Gpusim.Model.bd_compute_s);
                  ("global_s", Printf.sprintf "%.3g" bd.Gpusim.Model.bd_global_s);
                  ("local_s", Printf.sprintf "%.3g" bd.Gpusim.Model.bd_local_s);
                  ("constant_s", Printf.sprintf "%.3g" bd.Gpusim.Model.bd_constant_s);
                  ("image_s", Printf.sprintf "%.3g" bd.Gpusim.Model.bd_image_s);
                  ("launch_s", Printf.sprintf "%.3g" bd.Gpusim.Model.bd_launch_s);
                ]
              |> fun base ->
              (* counters ride along, minus keys launch_attrs already set *)
              base
              @ (match fi.fi_counters with
                | Some c ->
                    List.filter
                      (fun (k, _) -> not (List.mem_assoc k base))
                      (Gpusim.Counters.span_attrs c)
                | None -> [])
          | _ -> []
        in
        complete tracer ~cat:"comm" ~args ~ts_us:!off ~dur_us ("comm." ^ leg);
        off := !off +. dur_us)
      (leg_order fi.fi_phases);
    end_span tracer ~ts_us:(t0 +. total_us) ("firing." ^ fi.fi_task);
    advance_to tracer (t0 +. total_us)
  end

let install ?(tracer = default) () =
  Pipeline.on_phase ~key:"trace" (fun ~phase ev ->
      match ev with
      | `Begin -> begin_span tracer ~cat:"compile" ("pipeline." ^ phase)
      | `End seconds ->
          end_span tracer
            ~args:[ ("cpu_s", Printf.sprintf "%.3g" seconds) ]
            ("pipeline." ^ phase));
  Engine.on_firing ~key:"trace" (emit_firing tracer);
  (* rewrite.* spans: the beam search brackets as one wall-clock span with
     an instant child per level; a replay of a stored schedule is a single
     instant.  All carry their key facts as args. *)
  Search.on_search ~key:"trace" (fun ev ->
      let seq_arg seq = ("sequence", Search.seq_str seq) in
      match ev with
      | Search.EBegin { kernel; device; width; depth } ->
          begin_span tracer ~cat:"rewrite"
            ~args:
              [
                ("kernel", kernel);
                ("device", device);
                ("width", string_of_int width);
                ("depth", string_of_int depth);
              ]
            "rewrite.search"
      | Search.ELevel { level; frontier; evals; best_time_s; best_sequence } ->
          complete tracer ~cat:"rewrite" ~dur_us:1.0
            ~args:
              [
                ("level", string_of_int level);
                ("frontier", string_of_int frontier);
                ("evals", string_of_int evals);
                ("best_time_s", Printf.sprintf "%.3e" best_time_s);
                seq_arg best_sequence;
              ]
            "rewrite.level"
      | Search.EEnd { evals; best_time_s; best_sequence; improved } ->
          end_span tracer
            ~args:
              [
                ("evals", string_of_int evals);
                ("best_time_s", Printf.sprintf "%.3e" best_time_s);
                seq_arg best_sequence;
                ("improved", string_of_bool improved);
              ]
            "rewrite.search"
      | Search.EReplay { kernel; sequence; ok } ->
          complete tracer ~cat:"rewrite" ~dur_us:1.0
            ~args:
              [
                ("kernel", kernel);
                seq_arg sequence;
                ("ok", string_of_bool ok);
              ]
            "rewrite.replay");
  (* sched.* spans: the placement search brackets as one wall-clock span;
     a replay of a stored (or user-specified) placement is an instant. *)
  let module PS = Lime_sched.Search in
  PS.on_search ~key:"trace" (fun ev ->
      match ev with
      | PS.SBegin { stages; placeable; firings; exhaustive } ->
          begin_span tracer ~cat:"sched"
            ~args:
              [
                ("stages", string_of_int stages);
                ("placeable", string_of_int placeable);
                ("firings", string_of_int firings);
                ("exhaustive", string_of_bool exhaustive);
              ]
            "sched.search"
      | PS.SEnd { evals; best_time_s; best_spec; improved } ->
          end_span tracer
            ~args:
              [
                ("evals", string_of_int evals);
                ("best_time_s", Printf.sprintf "%.3e" best_time_s);
                ("placement", best_spec);
                ("improved", string_of_bool improved);
              ]
            "sched.search"
      | PS.SReplay { spec; ok } ->
          complete tracer ~cat:"sched" ~dur_us:1.0
            ~args:[ ("placement", spec); ("ok", string_of_bool ok) ]
            "sched.replay")

let uninstall () =
  Pipeline.remove_phase_observer "trace";
  Engine.remove_firing_observer "trace";
  Search.remove_search_observer "trace";
  Lime_sched.Search.remove_search_observer "trace"

let with_observers ?(tracer = default) f =
  let was = tracer.tr_enabled in
  tracer.tr_enabled <- true;
  install ~tracer ();
  Fun.protect
    ~finally:(fun () ->
      uninstall ();
      tracer.tr_enabled <- was)
    f
