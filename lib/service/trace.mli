(** Span-based end-to-end tracer with Chrome trace-event export.

    A {!t} records a tree of named, categorized spans with key/value
    attributes on one timeline.  Two kinds of span coexist:

    - {b wall-clock spans} ({!begin_span}/{!end_span}/{!with_span}) measure
      real elapsed work — the compiler pipeline phases, cache lookups,
      artifact stores;
    - {b model-time spans} ({!complete}) carry an explicit start and
      duration — the simulated communication legs and kernel time of an
      offloaded firing, which never ran on a wall clock.

    Timestamps are microseconds from tracer creation and strictly
    monotonic per event (coarse clocks are nudged forward), so exported
    traces are always well-formed.  The export format is Chrome
    trace-event JSON ("X" complete events), loadable in [chrome://tracing]
    and {{:https://ui.perfetto.dev}Perfetto}; {!summary} and {!flame} are
    terminal-friendly views of the same data.

    {!default} is the process-wide tracer the instrumentation hooks write
    to.  It starts {e disabled}: every recording call on a disabled tracer
    is a cheap no-op, so instrumented code paths cost nothing until
    tracing is switched on.  Explicit {!create}d instances (for tests)
    start enabled.

    {b Thread safety}: a tracer may be written from any domain.  Each
    domain records into its own span buffer with its own open-span stack
    (so nesting never crosses domains); span ids come from one atomic
    counter and the shared clock is mutex-guarded.  Readers ({!spans},
    export, {!summary}, {!flame}) merge the per-domain buffers into a
    single timeline ordered by span id — global begin order. *)

type t

type span = {
  sp_id : int;
  sp_parent : int;  (** [-1] for roots *)
  sp_name : string;
  sp_cat : string;
  mutable sp_args : (string * string) list;
  sp_begin_us : float;
  mutable sp_end_us : float;  (** negative while still open *)
}

val create : ?clock:(unit -> float) -> unit -> t
(** A fresh, enabled tracer.  [clock] returns seconds (default
    [Sys.time]); timestamps are relative to creation. *)

val default : t
(** The process-wide tracer; starts disabled. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val reset : t -> unit
(** Drop all recorded spans, re-zero the timeline, zero the dropped-span
    counter, and mint a fresh trace id. *)

(** {1 Trace identity}

    Every tracer carries a 128-bit trace id (32 lowercase hex characters)
    minted at creation.  The id travels across the [limec --connect] ⇄
    [limed] wire so client and daemon spans belong to one distributed
    trace, and it is stamped into the Chrome export
    ([otherData.traceId]). *)

val trace_id : t -> string
(** This tracer's 128-bit trace id as 32 lowercase hex characters. *)

val set_trace_id : t -> string -> unit
(** Adopt a propagated trace id.  Invalid ids (wrong length, non-hex) are
    replaced with a freshly minted one rather than accepted. *)

val valid_trace_id : string -> bool
(** [true] iff the string is exactly 32 lowercase hex characters. *)

val fresh_trace_id : unit -> string
(** Mint a new random 128-bit trace id (32 lowercase hex characters). *)

(** {1 Span retention}

    Long-running processes (the [limed] daemon traces always-on) must not
    accumulate spans without bound: each domain's buffer is capped.  When
    a buffer outgrows the cap, the oldest closed spans are dropped down to
    7/8 of the cap and counted in {!dropped_spans} (exported by the server
    as the [lime_trace_dropped_spans] metric).  Open spans are never
    dropped. *)

val retention : t -> int
(** Per-domain retained-span cap; [0] means unbounded.  Default 65536. *)

val set_retention : t -> int -> unit

val dropped_spans : t -> int
(** Total spans evicted by the retention cap since creation/{!reset}. *)

val now_us : t -> float
(** Current trace time in microseconds; strictly monotonic across calls. *)

(** {1 Recording} *)

val begin_span :
  t -> ?cat:string -> ?args:(string * string) list -> ?ts_us:float ->
  string -> unit
(** Open a span nested under the innermost open span.  [ts_us] overrides
    the wall clock (for model-time timelines). *)

val end_span :
  t -> ?args:(string * string) list -> ?ts_us:float -> string -> unit
(** Close the innermost open span with this name (closing any nested
    still-open spans at the same instant); extra [args] are merged in.
    Unknown names are ignored. *)

val with_span :
  t -> ?cat:string -> ?args:(string * string) list -> string ->
  (unit -> 'a) -> 'a
(** [with_span t name f] wraps [f] in a span; exception-safe. *)

val complete :
  t -> ?cat:string -> ?args:(string * string) list -> ?ts_us:float ->
  dur_us:float -> string -> unit
(** Record an already-delimited span (explicit start and duration) under
    the innermost open span — the model-time primitive. *)

val advance_to : t -> float -> unit
(** Move the trace clock forward to at least this microsecond mark, so
    wall-clock events recorded after a batch of model-time spans land
    after them. *)

val current_span_id : t -> int
(** Id of the calling domain's innermost open span, or [-1] when none is
    open (or the tracer is disabled) — the parent to propagate in an
    outgoing trace context. *)

(** {1 Cross-process span hand-off}

    The daemon collects the spans a request recorded, serializes them
    with {!spans_to_wire} (timestamps rebased so 0 = request admission),
    and ships the buffer back inside the Result frame.  The client
    decodes with {!spans_of_wire} and {!graft}s them under its own
    request span, yielding one merged, well-nested timeline. *)

val collect : t -> (unit -> 'a) -> 'a * span list
(** [collect t f] runs [f] and returns its result together with every
    span the {e calling domain} recorded during [f], in begin order.
    Spans opened before [f] (still-enclosing parents) are excluded. *)

val graft : t -> ?at_us:float -> parent:int -> span list -> int
(** [graft t ~parent spans] inserts foreign spans into this tracer:
    every id is re-minted locally, parent links are rewired through the
    id map (foreign roots and dangling parents attach to [parent]),
    and timestamps — interpreted as microseconds relative to the foreign
    buffer's origin — are offset by [at_us] (default: the current trace
    time).  The clock is advanced past the last grafted end so subsequent
    local events stay monotonic.  Returns the number of spans grafted. *)

val spans_to_wire : span list -> string
(** Serialize a span buffer to the compact binary wire form (at most
    1,000,000 spans; extras are silently truncated). *)

val spans_of_wire : string -> (span list, string) result
(** Total decoder for {!spans_to_wire}'s format: any malformed buffer —
    truncation anywhere, bad format version, NaN timestamps, trailing
    bytes — yields [Error]. *)

(** {1 Inspection and export} *)

val spans : t -> span list
(** All recorded spans in begin order (open spans included). *)

val open_depth : t -> int
(** Number of currently open spans (0 when balanced). *)

val to_chrome_json : t -> string
(** The whole trace as Chrome trace-event JSON: an object with a
    [traceEvents] array of "X" complete events sorted by timestamp (open
    spans are closed at the current instant).  Loadable in
    [chrome://tracing] / Perfetto. *)

val write_chrome : t -> string -> unit
(** {!to_chrome_json} to a file. *)

val summary : ?top:int -> t -> string
(** The [top] (default 10) spans by inclusive duration, one aligned row
    each: inclusive time, share of the timeline, count, name. Spans of the
    same name aggregate. *)

val flame : t -> string
(** Indented tree of the whole trace — span name, category, inclusive
    duration — a poor man's flame graph for terminals. *)

(** {1 Instrumentation} *)

val install : ?tracer:t -> unit -> unit
(** Register trace observers (key ["trace"]) into
    {!Lime_gpu.Pipeline.on_phase} and {!Lime_runtime.Engine.on_firing}:
    every compile phase becomes a wall-clock span ([pipeline.<phase>]
    under [pipeline.compile]) and every firing becomes a model-time span
    ([firing.<task>]) with one child span per {!Lime_runtime.Comm.phases}
    leg ([comm.java_marshal] … [comm.host]); device firings attach the
    launch attributes from {!Gpusim.Model.launch_attrs}.  The rewrite
    engine's beam search ({!Lime_rewrite.Search.on_search}) traces as a
    [rewrite.search] span with one instant [rewrite.level] child per beam
    level and [rewrite.replay] instants for stored-schedule replays.
    Keyed registration composes with the metrics observers and is
    idempotent. *)

val uninstall : unit -> unit
(** Remove the observers {!install} registered. *)

val with_observers : ?tracer:t -> (unit -> 'a) -> 'a
(** [with_observers ~tracer f] runs [f] with the trace observers installed
    (and the tracer enabled), then uninstalls them and restores the
    tracer's previous enabled state — the scoped form of {!install} for
    tests and one-shot tooling. *)
