(** Declarative service-level objectives with multi-window burn-rate
    alerting.

    An SLO names a fraction of {e good} requests the service promises
    over time: an availability objective counts a request good when it
    succeeds; a latency objective additionally requires it to finish
    under a threshold.  The error budget is [1 - objective], and the
    {e burn rate} of a window is the window's bad fraction divided by
    that budget — burn 1.0 spends the budget exactly at the promised
    pace, burn 14.4 exhausts a 30-day budget in ~2 days.

    Alerting follows the multi-window pattern (Google SRE workbook): an
    alert {b fires} only when both a fast window (default 5m — catches
    the onset quickly) and a slow window (default 1h — proves it is not
    a blip) burn at or above the factor; the fast window alone burning
    is a {b warn}.  Both windows healthy is {b ok}.

    Events are recorded into a ring of per-minute good/bad counters (the
    same lazy-rotation scheme as {!Sketch} windows), so evaluation reads
    the last 5m/1h without unbounded state.

    {b Thread safety}: every operation may be called from any domain;
    one mutex guards each evaluator. *)

type kind =
  | Latency of float
      (** good iff the request succeeded {e and} took at most this many
          seconds *)
  | Availability  (** good iff the request succeeded *)

type def = { d_name : string; d_kind : kind; d_objective : float }

type state = Healthy | Warn | Firing

type status = {
  st_def : def;
  st_state : state;
  st_fast_burn : float;  (** burn rate over the fast window *)
  st_slow_burn : float;  (** burn rate over the slow window *)
  st_good : int;  (** all-time good events *)
  st_bad : int;  (** all-time bad events *)
}

val spec_syntax : string
(** One-line grammar for [--slo] specs, used in CLI usage errors. *)

val parse_spec : string -> (def, string) result
(** Parse a [\[NAME=\]KIND:OBJECTIVE\[:THRESHOLD\]] spec —
    [latency:0.95:1.0] (95% of successful requests under 1.0s),
    [availability:0.99], [compile=latency:0.99:0.25].  The objective must
    be in (0, 1); a latency spec requires a positive threshold in
    seconds; an availability spec must not carry one. *)

val render_spec : def -> string
(** The spec string that parses back to this definition. *)

type t

val create :
  ?fast_s:float -> ?slow_s:float -> ?burn_factor:float ->
  clock:(unit -> float) -> def list -> t
(** An evaluator over the given objectives.  [fast_s] (default 300) and
    [slow_s] (default 3600) are the two alerting windows; [burn_factor]
    (default 14.4) is the burn rate at which they trip.  [clock]
    supplies "now" in seconds. *)

val defs : t -> def list
val fast_s : t -> float
val slow_s : t -> float
val burn_factor : t -> float

val record : t -> ok:bool -> duration_s:float -> unit
(** Classify one finished request against every objective and record it
    into the current interval. *)

val evaluate : t -> status list
(** Current burn rates and alert states, in definition order.  Empty
    windows burn 0. *)

val state_name : state -> string
(** ["ok"], ["warn"], or ["firing"]. *)
