(** Bounded LRU cache of compiled artifacts, sharded for concurrency,
    with accounting.

    The service keeps {!Lime_gpu.Pipeline.compiled} values in one of these,
    keyed by {!Digest.t}; the container itself is polymorphic so it can be
    unit-tested without running the compiler.  Every lookup is counted
    (hit/miss/eviction/coalesced/contended) so cache effectiveness and lock
    contention are observable rather than inferred from timing.

    {b Thread safety}: the key space is split across [stripes]
    mutex-guarded shards; all operations may be called from any domain.
    The global capacity is preserved — it is distributed over the stripes,
    so the total entry count never exceeds [capacity].  With the default
    [~stripes:1] the cache behaves exactly like a single sequential LRU
    (deterministic eviction order); the parallel compile service uses
    multiple stripes so concurrent lookups of different keys rarely share
    a lock.  On a miss the computation runs {e outside} the stripe lock;
    two domains missing the same key concurrently may both compute, and
    the first insert wins (harmless for a deterministic compiler).

    {!find_or_add_many} is the request-coalescing entry point: a batch of N
    in-flight requests for the same key performs the expensive computation
    once — the duplicates are counted as [coalesced], not as hits. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable coalesced : int;
      (** duplicate in-flight requests served by one computation *)
  mutable contended : int;
      (** stripe-lock acquisitions that found the lock already held *)
}

type 'a t

val create : ?capacity:int -> ?stripes:int -> unit -> 'a t
(** An empty cache holding at most [capacity] entries (default 64;
    clamped to at least 1) split over [stripes] shards (default 1; clamped
    to [1..capacity] so no stripe has zero capacity). *)

val capacity : 'a t -> int
val stripes : 'a t -> int
val length : 'a t -> int
val stats : 'a t -> stats

val mem : 'a t -> string -> bool
(** Membership test; does not touch recency or counters. *)

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a
(** [find_or_add t key f] returns the cached value for [key] (a hit,
    refreshing its recency) or computes it with [f], inserts it, and evicts
    the least-recently-used entry of the key's stripe if that stripe is
    over capacity (a miss).  If [f] raises, nothing is inserted and the
    miss is still counted. *)

val find_or_add_many : 'a t -> (string * (unit -> 'a)) list -> 'a list
(** Serve a batch of in-flight requests, coalescing duplicates: the first
    occurrence of each key goes through {!find_or_add}; subsequent
    occurrences in the same batch reuse its result and count as
    [coalesced].  Results are returned in request order. *)

val note_coalesced : 'a t -> int -> unit
(** Account [n] additional coalesced requests — used by batch layers (such
    as {!Service.compile_many}) that deduplicate keys themselves before
    dispatching to the cache. *)

val keys_by_recency : 'a t -> string list
(** Cached keys, most recently used first (global recency order across all
    stripes — for tests and introspection). *)

val clear : 'a t -> unit
(** Drop all entries; counters are preserved. *)
