(** Content-addressed keys for the compile service.

    See the interface for the key scheme.  The hash is the stdlib MD5
    ({!Stdlib.Digest}) over a canonical, length-framed rendering of the
    request fields — collision resistance against adversaries is not a goal
    here (the cache is trusted, local state); stability and cheapness
    are. *)

module Memopt = Lime_gpu.Memopt

type t = string (* 32 lowercase hex characters *)

(* Fields listed in their canonical (alphabetical) order. *)
let config_fields (c : Memopt.config) : (string * bool) list =
  [
    ("pad_local", c.Memopt.pad_local);
    ("use_constant", c.Memopt.use_constant);
    ("use_image", c.Memopt.use_image);
    ("use_local", c.Memopt.use_local);
    ("use_private", c.Memopt.use_private);
    ("vectorize", c.Memopt.vectorize);
  ]

let canonical_config (c : Memopt.config) : string =
  config_fields c
  |> List.map (fun (k, v) -> k ^ "=" ^ string_of_bool v)
  |> String.concat ";"

let config_of_canonical (s : string) : Memopt.config option =
  let parse_pair p =
    match String.split_on_char '=' p with
    | [ k; v ] -> (
        match bool_of_string_opt v with
        | Some b -> Some (k, b)
        | None -> None)
    | _ -> None
  in
  let pairs =
    String.split_on_char ';' s |> List.map parse_pair
    |> List.fold_left
         (fun acc p ->
           match (acc, p) with
           | Some l, Some p -> Some (p :: l)
           | _ -> None)
         (Some [])
  in
  match pairs with
  | None -> None
  | Some pairs -> (
      let get k = List.assoc_opt k pairs in
      match
        ( get "use_private",
          get "use_local",
          get "pad_local",
          get "use_image",
          get "use_constant",
          get "vectorize" )
      with
      | ( Some use_private,
          Some use_local,
          Some pad_local,
          Some use_image,
          Some use_constant,
          Some vectorize ) ->
          Some
            {
              Memopt.use_private;
              use_local;
              pad_local;
              use_image;
              use_constant;
              vectorize;
            }
      | _ -> None)

let of_fields (fields : (string * string) list) : t =
  let sorted =
    List.sort (fun (a, _) (b, _) -> String.compare a b) fields
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun (k, v) ->
      (* length framing: ("ab","c") and ("a","bc") must differ *)
      Buffer.add_string buf (string_of_int (String.length k));
      Buffer.add_char buf ':';
      Buffer.add_string buf k;
      Buffer.add_string buf (string_of_int (String.length v));
      Buffer.add_char buf ':';
      Buffer.add_string buf v)
    sorted;
  Stdlib.Digest.to_hex (Stdlib.Digest.string (Buffer.contents buf))

let of_request ?(device = "-") ?(config = Memopt.config_all)
    ~(worker : string) (source : string) : t =
  of_fields
    [
      ("source", source);
      ("worker", worker);
      ("config", canonical_config config);
      ("device", device);
    ]

let to_hex (t : t) : string = t
let short (t : t) : string = String.sub t 0 12
let equal = String.equal
let compare = String.compare
