(** File-backed store of autotuning results — see the interface. *)

module Memopt = Lime_gpu.Memopt

type headline = {
  th_occupancy : float;
  th_bank_replays : float;
  th_roofline : string;
}

type record = {
  tr_config_name : string;
  tr_config : Memopt.config;
  tr_time_s : float;
  tr_headline : headline option;
  tr_sequence : string list option;
  tr_placement : string option;
}

type t = { ts_root : string }

(* Format version 4 adds the multi-device placement (a [placement] line,
   the task=device,... SPEC the scheduler chose); version 3 added the
   winning rewrite schedule (a [sequence] line, ";"-separated step names,
   "-" for the empty schedule); version 2 added the winner's headline
   counters.  Older files are still readable: a v1 file loads with
   [tr_headline = None], v1/v2 with [tr_sequence = None], v1-v3 with
   [tr_placement = None]. *)
let magic = "lime-tunestore 4"
let magic_v3 = "lime-tunestore 3"
let magic_v2 = "lime-tunestore 2"
let magic_v1 = "lime-tunestore 1"

(* [Some []] (searched, baseline won) must round-trip distinctly from
   [None] (never searched), so the empty schedule gets a sentinel. *)
let sequence_to_line = function
  | [] -> "-"
  | seq -> String.concat ";" seq

let sequence_of_line = function
  | "-" -> []
  | s -> String.split_on_char ';' s

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      (try Sys.mkdir d 0o755 with Sys_error _ -> ())
    end
  in
  go dir

let open_ dir =
  mkdir_p dir;
  { ts_root = dir }

let root t = t.ts_root

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '-')
    s

let path t ~digest ~device =
  Filename.concat t.ts_root
    (Digest.to_hex digest ^ "." ^ sanitize device ^ ".tune")

let store t ~digest ~device (r : record) =
  let file = path t ~digest ~device in
  Out_channel.with_open_text file (fun oc ->
      Printf.fprintf oc "%s\nname %s\nconfig %s\ntime_s %.9g\n" magic
        r.tr_config_name
        (Digest.canonical_config r.tr_config)
        r.tr_time_s;
      (match r.tr_headline with
      | None -> ()
      | Some h ->
          Printf.fprintf oc "occupancy %.9g\nbank_replays %.9g\nroofline %s\n"
            h.th_occupancy h.th_bank_replays h.th_roofline);
      (match r.tr_sequence with
      | None -> ()
      | Some seq ->
          Printf.fprintf oc "sequence %s\n" (sequence_to_line seq));
      match r.tr_placement with
      | None -> ()
      | Some spec -> Printf.fprintf oc "placement %s\n" spec)

(* "key rest-of-line" — the value may contain spaces (config names do). *)
let field line key =
  let prefix = key ^ " " in
  if
    String.length line > String.length prefix
    && String.sub line 0 (String.length prefix) = prefix
  then Some (String.sub line (String.length prefix)
               (String.length line - String.length prefix))
  else None

let load t ~digest ~device : record option =
  let file = path t ~digest ~device in
  if not (Sys.file_exists file) then None
  else
    let lines =
      In_channel.with_open_text file In_channel.input_all
      |> String.split_on_char '\n'
    in
    match lines with
    | m :: rest
      when m = magic || m = magic_v3 || m = magic_v2 || m = magic_v1 ->
        let find key = List.find_map (fun l -> field l key) rest in
        (match (find "name", find "config", find "time_s") with
        | Some name, Some cfg, Some time -> (
            match
              (Digest.config_of_canonical cfg, float_of_string_opt time)
            with
            | Some tr_config, Some tr_time_s ->
                let tr_headline =
                  match
                    ( find "occupancy",
                      find "bank_replays",
                      find "roofline" )
                  with
                  | Some occ, Some br, Some rl -> (
                      match
                        (float_of_string_opt occ, float_of_string_opt br)
                      with
                      | Some th_occupancy, Some th_bank_replays ->
                          Some
                            { th_occupancy; th_bank_replays; th_roofline = rl }
                      | _ -> None)
                  | _ -> None
                in
                let tr_sequence =
                  Option.map sequence_of_line (find "sequence")
                in
                let tr_placement = find "placement" in
                Some
                  {
                    tr_config_name = name;
                    tr_config;
                    tr_time_s;
                    tr_headline;
                    tr_sequence;
                    tr_placement;
                  }
            | _ -> None)
        | _ -> None)
    | _ -> None

let cached_sweep t (d : Gpusim.Device.t) ~digest ~device
    ?(sweep = Gpusim.Autotune.sweep) (k : Lime_gpu.Kernel.kernel) ~shapes
    ~scalars : Gpusim.Autotune.entry list * [ `Hit of record | `Miss ] =
  match load t ~digest ~device with
  | Some r ->
      let bd = Gpusim.Autotune.time_config d k r.tr_config ~shapes ~scalars in
      ( [
          {
            Gpusim.Autotune.at_name = r.tr_config_name;
            at_config = r.tr_config;
            at_time_s = bd.Gpusim.Model.bd_total_s;
            at_breakdown = bd;
          };
        ],
        `Hit r )
  | None ->
      let entries = sweep d k ~shapes ~scalars in
      (match entries with
      | best :: _ ->
          let c =
            Gpusim.Autotune.counters_for d k best.Gpusim.Autotune.at_config
              ~shapes ~scalars
          in
          store t ~digest ~device
            {
              tr_config_name = best.Gpusim.Autotune.at_name;
              tr_config = best.Gpusim.Autotune.at_config;
              tr_time_s = best.Gpusim.Autotune.at_time_s;
              tr_sequence = None;
              tr_placement = None;
              tr_headline =
                Some
                  {
                    th_occupancy = c.Gpusim.Counters.ct_occupancy;
                    th_bank_replays = c.Gpusim.Counters.ct_bank_replays;
                    th_roofline =
                      Gpusim.Counters.roofline_name
                        (Gpusim.Counters.classify c);
                  };
            }
      | [] -> ());
      (entries, `Miss)
