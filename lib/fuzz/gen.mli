(** Property-based generator of well-typed Lime task-graph programs.

    Programs are pipelines over a deterministic float vector: an
    on-device generator stage ([genCell], hashed from a seed literal
    baked into the source), 1–3 filter stages (pointwise maps and
    sliding-window gathers), an optional terminal reduction, and a
    field-writing sink, wired through a [task .. => task ..] graph.
    Every emitted program must be accepted by the frontend and be total
    at runtime; any downstream rejection or crash is a finding.  See
    [doc/FUZZING.md]. *)

(** Scalar expression over the mapped element [x] and a captured
    per-stage constant [c].  Total by construction ([Sqrt1p] guards its
    argument, there is no division). *)
type fexpr =
  | X
  | C
  | Lit of float
  | Add of fexpr * fexpr
  | Sub of fexpr * fexpr
  | Mul of fexpr * fexpr
  | Neg of fexpr
  | Abs of fexpr
  | Sqrt1p of fexpr  (** rendered [Math.sqrt(e*e + 1.0f)] *)
  | Min of fexpr * fexpr
  | Max of fexpr * fexpr
  | Cond of fexpr * fexpr * fexpr * fexpr  (** [a < b ? t : e] *)

type stage =
  | Map of { cap : float; body : fexpr }
  | Window of { w : int; stride : int; cap : float; body : fexpr }

type reduce = RSum | RMax | RMin

type prog = {
  p_data : int;
  p_n : int;
  p_stages : stage list;
  p_reduce : reduce option;
  p_split : bool;
  p_steps : int;
}

val split_effective : prog -> bool
(** Whether the pipeline actually renders as two workers ([p_split] is
    ignored for single-stage programs). *)

val to_source : prog -> string
(** Render as a self-contained [.lime] compilation unit: [class Gen]
    (stage element functions + workers) and [class GenApp] (input
    generator, sink, and a [main] that fires the task graph). *)

val workers : prog -> string list
(** The worker method names in pipeline order — the values to pass to
    [Pipeline.compile ~worker], and the functions to chain for the
    reference result. *)

val gen_prog : prog QCheck.Gen.t
val shrink_prog : prog -> prog QCheck.Iter.t
val print_prog : prog -> string

val arbitrary : prog QCheck.arbitrary
(** [gen_prog] + structural shrinking + source-level printing: a failure
    report is a loadable [.lime] file, not an AST dump. *)

val corpus : seed:int -> int -> prog list
(** A reproducible program pool: same [seed] and [count] yield the same
    corpus on every machine (bench traffic, CI budgets). *)
