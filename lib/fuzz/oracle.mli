(** Three-way differential oracle over generated Lime programs.

    Per program: (1) the reference interpreter result of the worker
    chain, (2) the task-graph engine's sink value on every simulated
    device plus pure bytecode — compared bit-exactly against (1) — and
    (3) Clcheck well-formedness of the generated OpenCL under the
    compile config and all eight Fig 8 sweep configurations.  A schedule
    mode additionally replays random [lime.rewrite] catalog sequences
    against each worker's kernel and demands result preservation plus
    well-formed rescheduled OpenCL.  See [doc/FUZZING.md]. *)

type disagreement = { d_layer : string; d_detail : string }
(** [d_layer] is one of ["frontend"], ["opencl"], ["opencl-sweep"],
    ["reference"], ["engine"], ["schedule"], ["schedule-opencl"]. *)

val disagreement_to_string : disagreement -> string

val check :
  ?devices:Gpusim.Device.t list ->
  ?schedules:int ->
  ?sched_seed:int ->
  ?perturb_reference:(Lime_ir.Value.t -> Lime_ir.Value.t) ->
  Gen.prog ->
  (unit, disagreement) result
(** Run every oracle layer on one generated program.  [devices] defaults
    to all four simulated devices (bytecode is always added);
    [schedules] (default 2) is the number of random rewrite sequences
    replayed per worker kernel, 0 to disable; [sched_seed] makes the
    sequence choice deterministic per program.  [perturb_reference] maps
    the layer-1 reference value before the engine comparison — the
    oracle's self-test hook: a perturbed oracle must report an ["engine"]
    disagreement on (nearly) every program, proving the harness has
    teeth (see [doc/FUZZING.md] and [limefuzz --selftest]). *)

val nudge : Lime_ir.Value.t -> Lime_ir.Value.t
(** The canonical [perturb_reference]: adds 1.0 to a scalar reference
    value or to an array's first element, so a healthy engine must
    disagree on every generated program — the oracle's self-test. *)

val run_kernel : Lime_gpu.Kernel.kernel -> Lime_ir.Value.t -> Lime_ir.Value.t
(** Execute a kernel standalone (interpreter over [Kernel.to_module]) —
    the rewrite replay path's executable form. *)

val counterexample : ?disagreement:disagreement -> seed:int -> Gen.prog -> string
(** Render a shrunk program as a loadable [.lime] compilation unit with
    a comment header naming the disagreement and the reproducing seed. *)

val save :
  ?disagreement:disagreement -> seed:int -> path:string -> Gen.prog -> unit
