(* The three-way differential oracle over generated programs.

   Layer 1 (reference): the tree-walking interpreter runs the input
   generator and the worker chain directly — this is the semantics.
   Layer 2 (engine): the task-graph engine fires the whole program on
   every simulated device (and once as pure bytecode); the value that
   reaches the sink must equal the reference bit-for-bit, since the
   functional kernel path executes through the same f32-rounding
   interpreter.  Layer 3 (codegen): the generated OpenCL for every
   worker — under the compile config and all eight Fig 8 sweep
   configurations — must pass Clcheck.

   On top of the three layers, the schedule mode replays random rewrite
   sequences from the lime.rewrite catalog against each worker's kernel
   (the same replay path as test_rewrite_legality): an accepted sequence
   must preserve the kernel's result (bit-exact unless it contains the
   reassociating "interchange"), and the rescheduled kernel's OpenCL
   must still pass Clcheck.

   Any violation is a [disagreement] naming the layer; the caller turns
   it into a minimized counterexample via QCheck shrinking. *)

module V = Lime_ir.Value
module Interp = Lime_ir.Interp
module Pipeline = Lime_gpu.Pipeline
module Clcheck = Lime_gpu.Clcheck
module Kernel = Lime_gpu.Kernel
module Engine = Lime_runtime.Engine
module Rewrite = Lime_rewrite.Rewrite
module Prng = Lime_support.Prng
module Diag = Lime_support.Diag

type disagreement = { d_layer : string; d_detail : string }

let disagreement_to_string d =
  Printf.sprintf "[%s] %s" d.d_layer d.d_detail

exception Found of disagreement

let fail layer fmt =
  Printf.ksprintf
    (fun d_detail -> raise (Found { d_layer = layer; d_detail }))
    fmt

let equal_under ~exact a b =
  if exact then V.approx_equal ~rtol:0.0 ~atol:0.0 a b
  else V.approx_equal ~rtol:2e-4 ~atol:1e-6 a b

(* Run a kernel standalone through the interpreter on its synthesized
   module — the replay path's executable form. *)
let run_kernel (k : Kernel.kernel) (input : V.t) : V.t =
  let st = Interp.create (Kernel.to_module k) in
  Interp.call_function st k.Kernel.k_name None [ input ]

let rewrite_names : string list =
  List.map (fun (s : Rewrite.step) -> s.Rewrite.name) Rewrite.catalog

let check ?(devices = Gpusim.Device.all) ?(schedules = 2) ?(sched_seed = 1)
    ?(perturb_reference = fun (v : V.t) -> v) (p : Gen.prog) :
    (unit, disagreement) result =
  let source = Gen.to_source p in
  try
    (* Layer 3a: frontend acceptance.  The generator only emits programs
       it believes are well-typed offloadable filters. *)
    let compiled =
      List.map
        (fun w ->
          match
            Diag.protect (fun () -> Pipeline.compile ~worker:w source)
          with
          | Ok c -> (w, c)
          | Error d -> fail "frontend" "%s rejected: %s" w (Diag.to_string d))
        (Gen.workers p)
    in
    (* Layer 3b: generated OpenCL is well-formed, for the compile config
       and for all eight Fig 8 configurations. *)
    List.iter
      (fun (w, (c : Pipeline.compiled)) ->
        let r = Clcheck.check c.Pipeline.cp_opencl in
        if not (Clcheck.ok r) then
          fail "opencl" "%s: %s" w (Clcheck.report r);
        List.iter
          (fun (cfg, (c' : Pipeline.compiled)) ->
            let r = Clcheck.check c'.Pipeline.cp_opencl in
            if not (Clcheck.ok r) then
              fail "opencl-sweep" "%s under %s: %s" w cfg (Clcheck.report r))
          (Pipeline.sweep c))
      compiled;
    (* Layer 1: reference result by chaining the workers over the
       generated input, all inside the interpreter.  [inputs] records
       what flows into each worker, for the per-kernel schedule replay
       below. *)
    let md = (snd (List.hd compiled)).Pipeline.cp_module in
    let st = Interp.create md in
    let input, inputs, want =
      try
        let input =
          Interp.run_instance st ~cls:"GenApp"
            ~ctor_args:[ V.VInt p.p_n ] ~meth:"gen" []
        in
        let inputs, want =
          List.fold_left
            (fun (ins, v) (w, _) ->
              (ins @ [ v ], Interp.call_function st w None [ v ]))
            ([], input) compiled
        in
        (input, inputs, want)
      with Interp.Runtime_error m ->
        fail "reference" "interpreter crashed on a generated program: %s" m
    in
    ignore input;
    let expect = perturb_reference want in
    (* Layer 2: the engine's sink value on every device, and as pure
       bytecode.  Both sides round through f32 identically, so the
       comparison is bit-exact. *)
    List.iter
      (fun dev ->
        let name =
          match dev with
          | Some d -> d.Gpusim.Device.name
          | None -> "bytecode"
        in
        let cfg = { Engine.default_config with Engine.device = dev } in
        let rep =
          try
            let _, rep =
              Engine.run_program cfg md ~cls:"GenApp" ~meth:"main"
                [ V.VInt p.p_n; V.VInt p.p_steps ]
            in
            rep
          with Interp.Runtime_error m ->
            fail "engine" "%s: crashed: %s" name m
        in
        if not (equal_under ~exact:true expect rep.Engine.last_value) then
          fail "engine" "%s: expected %s at the sink, got %s" name
            (V.to_string expect)
            (V.to_string rep.Engine.last_value))
      (List.map Option.some devices @ [ None ]);
    (* Schedule mode: random catalog sequences replayed against each
       worker's kernel.  Rejected sequences are fine (legality is the
       rewrite suite's property); accepted ones must preserve results
       and still produce well-formed OpenCL. *)
    if schedules > 0 then begin
      let rng = Prng.create (sched_seed lxor Hashtbl.hash source) in
      List.iter2
        (fun (w, (c : Pipeline.compiled)) kin ->
          let k = c.Pipeline.cp_kernel in
          let want_k = run_kernel k kin in
          for _ = 1 to schedules do
            let len = 1 + Prng.int rng 3 in
            let seq =
              List.init len (fun _ ->
                  List.nth rewrite_names
                    (Prng.int rng (List.length rewrite_names)))
            in
            let st0 = Rewrite.initial ~config:c.Pipeline.cp_config k in
            match Rewrite.apply_sequence st0 seq with
            | Error _ -> ()
            | Ok st' ->
                let sched = String.concat ";" seq in
                let got =
                  try run_kernel st'.Rewrite.st_kernel kin
                  with Interp.Runtime_error m ->
                    fail "schedule" "%s under [%s]: crashed: %s" w sched m
                in
                let exact = not (List.mem "interchange" seq) in
                if not (equal_under ~exact want_k got) then
                  fail "schedule" "%s under [%s]: expected %s, got %s" w
                    sched (V.to_string want_k) (V.to_string got);
                let c' =
                  Pipeline.reschedule c ~schedule:seq st'.Rewrite.st_kernel
                    st'.Rewrite.st_config
                in
                let r = Clcheck.check c'.Pipeline.cp_opencl in
                if not (Clcheck.ok r) then
                  fail "schedule-opencl" "%s under [%s]: %s" w sched
                    (Clcheck.report r)
          done)
        compiled inputs
    end;
    Ok ()
  with Found d -> Error d

(* The canonical self-test perturbation: nudge the reference value (the
   scalar itself, or an array's first element) by 1.0 so the engine
   comparison must report a disagreement on every generated program.
   Documented in doc/FUZZING.md as the proof the oracle has teeth. *)
let nudge : V.t -> V.t = function
  | V.VFloat f -> V.VFloat (f +. 1.0)
  | V.VArr a when V.length a > 0 -> (
      let a' = V.deep_copy a in
      match V.index a' [ 0 ] with
      | V.VFloat f ->
          V.store a' [ 0 ] (V.VFloat (f +. 1.0));
          V.VArr a'
      | _ -> V.VArr a')
  | v -> v

(* ------------------------------------------------------------------ *)
(* Counterexample rendering                                            *)
(* ------------------------------------------------------------------ *)

let counterexample ?disagreement ~seed (p : Gen.prog) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "// lime.fuzz counterexample (minimized)\n";
  Buffer.add_string buf
    (Printf.sprintf "// reproduce: limefuzz --seed %d\n" seed);
  (match disagreement with
  | None -> ()
  | Some d ->
      String.split_on_char '\n' (disagreement_to_string d)
      |> List.iter (fun l -> Buffer.add_string buf ("// " ^ l ^ "\n")));
  Buffer.add_string buf
    (Printf.sprintf "// workers: %s\n" (String.concat " " (Gen.workers p)));
  Buffer.add_string buf (Gen.to_source p);
  Buffer.contents buf

let save ?disagreement ~seed ~path (p : Gen.prog) : unit =
  let oc = open_out path in
  output_string oc (counterexample ?disagreement ~seed p);
  close_out oc
