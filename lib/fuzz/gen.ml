(* Property-based generator of well-typed Lime task graphs.

   A generated program is a pipeline over a deterministic float vector:
   an on-device data generator stage ([genCell] hashed from an integer
   seed baked into the source), one to three filter stages (pointwise
   maps and sliding-window gathers), an optional terminal reduction, all
   wired through a [task .. => task .. => ..] graph with a field-writing
   sink.  Every program the generator emits must be accepted by the
   frontend, classifiable by the kernel extractor, and total at runtime
   (no NaN sources, index arithmetic always wrapped by [% xs.length]) —
   any rejection or crash downstream is a finding, not generator noise.

   The shape mirrors what the paper's nine workloads exercise (map over
   [Lime.range], [@] partial application, [+ !]/[Math.max !] reduces,
   multi-task graphs) but explores the space the hand-written suite
   cannot: deep expression trees, window/stride combinations, map chains
   that force scratch buffers through codegen, and split-vs-fused task
   boundaries. *)

(* ------------------------------------------------------------------ *)
(* Program shapes                                                      *)
(* ------------------------------------------------------------------ *)

(* Scalar expression over the element [x] and a per-stage captured
   constant [c].  Total by construction: [Sqrt1p e] renders as
   [sqrt(e*e + 1)] so its argument is always >= 1, and there is no
   division. *)
type fexpr =
  | X
  | C
  | Lit of float  (** small multiple of 0.25, so f32 arithmetic is exact-ish *)
  | Add of fexpr * fexpr
  | Sub of fexpr * fexpr
  | Mul of fexpr * fexpr
  | Neg of fexpr
  | Abs of fexpr
  | Sqrt1p of fexpr
  | Min of fexpr * fexpr
  | Max of fexpr * fexpr
  | Cond of fexpr * fexpr * fexpr * fexpr  (** [a < b ? t : e] *)

type stage =
  | Map of { cap : float; body : fexpr }
      (** [Gen.eK(cap) @ xs] — pointwise *)
  | Window of { w : int; stride : int; cap : float; body : fexpr }
      (** gather over [w] neighbours at [i*stride + j], wrapped mod
          length, summed — an indexed map over [Lime.range] *)

type reduce = RSum | RMax | RMin

type prog = {
  p_data : int;  (** seed literal baked into the [genCell] input stage *)
  p_n : int;  (** input vector length (>= 2) *)
  p_stages : stage list;  (** >= 1 *)
  p_reduce : reduce option;  (** [None] = the graph moves an array to the sink *)
  p_split : bool;  (** split stages across two task-graph workers *)
  p_steps : int;  (** [finish(steps)] *)
}

let split_effective (p : prog) = p.p_split && List.length p.p_stages >= 2

(* ------------------------------------------------------------------ *)
(* Source rendering                                                    *)
(* ------------------------------------------------------------------ *)

let lit (f : float) : string = Printf.sprintf "%.2ff" f

let rec fexpr_c (e : fexpr) : string =
  let bin op a b = Printf.sprintf "(%s %s %s)" (fexpr_c a) op (fexpr_c b) in
  let call2 fn a b = Printf.sprintf "%s(%s, %s)" fn (fexpr_c a) (fexpr_c b) in
  match e with
  | X -> "x"
  | C -> "c"
  | Lit f -> lit f
  | Add (a, b) -> bin "+" a b
  | Sub (a, b) -> bin "-" a b
  | Mul (a, b) -> bin "*" a b
  | Neg a -> Printf.sprintf "(0.0f - %s)" (fexpr_c a)
  | Abs a -> Printf.sprintf "Math.abs(%s)" (fexpr_c a)
  | Sqrt1p a ->
      let s = fexpr_c a in
      Printf.sprintf "Math.sqrt((%s * %s) + 1.0f)" s s
  | Min (a, b) -> call2 "Math.min" a b
  | Max (a, b) -> call2 "Math.max" a b
  | Cond (a, b, t, f) ->
      Printf.sprintf "((%s < %s) ? %s : %s)" (fexpr_c a) (fexpr_c b)
        (fexpr_c t) (fexpr_c f)

(* The element function for stage [k] and the [@]-application of that
   stage to the array identifier [arr]. *)
let stage_fn (k : int) (s : stage) : string =
  match s with
  | Map { body; _ } ->
      Printf.sprintf
        "  static local float e%d(float c, float x) {\n    return %s;\n  }\n" k
        (fexpr_c body)
  | Window { w; stride; body; _ } ->
      Printf.sprintf
        "  static local float w%d(float[[]] xs, float c, int i) {\n\
        \    float acc = 0.0f;\n\
        \    for (int j = 0; j < %d; j++) {\n\
        \      float x = xs[(i * %d + j) %% xs.length];\n\
        \      acc = acc + %s;\n\
        \    }\n\
        \    return acc;\n\
        \  }\n"
        k w stride (fexpr_c body)

let stage_app (k : int) (s : stage) (arr : string) : string =
  match s with
  | Map { cap; _ } -> Printf.sprintf "Gen.e%d(%s) @ %s" k (lit cap) arr
  | Window { cap; _ } ->
      Printf.sprintf "Gen.w%d(%s, %s) @ Lime.range(%s.length)" k arr (lit cap)
        arr

let reduce_op = function
  | RSum -> "+"
  | RMax -> "Math.max"
  | RMin -> "Math.min"

(* One worker covering stages [lo, hi) of [stages] (global indices keep
   the [eK]/[wK] names stable across the split), reducing iff [red]. *)
let worker_fn (name : string) (stages : (int * stage) list)
    (red : reduce option) : string =
  let buf = Buffer.create 256 in
  let ret_ty = match red with Some _ -> "float" | None -> "float[[]]" in
  Buffer.add_string buf
    (Printf.sprintf "  static local %s %s(float[[]] xs) {\n" ret_ty name);
  let n = List.length stages in
  let arr_of i = if i = 0 then "xs" else Printf.sprintf "t%d" (i - 1) in
  List.iteri
    (fun i (k, s) ->
      let app = stage_app k s (arr_of i) in
      let last = i = n - 1 in
      match red with
      | None when last -> Buffer.add_string buf ("    return " ^ app ^ ";\n")
      | _ ->
          Buffer.add_string buf
            (Printf.sprintf "    float[[]] t%d = %s;\n" i app))
    stages;
  (match red with
  | Some r ->
      Buffer.add_string buf
        (Printf.sprintf "    return %s ! t%d;\n" (reduce_op r) (n - 1))
  | None -> ());
  Buffer.add_string buf "  }\n";
  Buffer.contents buf

(* The worker method names, in pipeline order, that [to_source] emits —
   exactly what must be fed to [Pipeline.compile ~worker]. *)
let workers (p : prog) : string list =
  if split_effective p then [ "Gen.workA"; "Gen.workB" ] else [ "Gen.work" ]

let to_source (p : prog) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "class Gen {\n";
  List.iteri (fun k s -> Buffer.add_string buf (stage_fn k s)) p.p_stages;
  Buffer.add_string buf
    "  static local float genCell(int seed, int i) {\n\
    \    int h = (i * 48271 + seed) ^ (i >>> 7);\n\
    \    return (float) (h & 1023) / 1024.0f - 0.5f;\n\
    \  }\n";
  let indexed = List.mapi (fun k s -> (k, s)) p.p_stages in
  (if split_effective p then begin
     let m = max 1 (List.length indexed / 2) in
     let a = List.filteri (fun i _ -> i < m) indexed in
     let b = List.filteri (fun i _ -> i >= m) indexed in
     Buffer.add_string buf (worker_fn "workA" a None);
     Buffer.add_string buf (worker_fn "workB" b p.p_reduce)
   end
   else Buffer.add_string buf (worker_fn "work" indexed p.p_reduce));
  Buffer.add_string buf "}\n";
  let out_ty = match p.p_reduce with Some _ -> "float" | None -> "float[[]]" in
  let graph =
    String.concat " => "
      (("task GenApp(size).gen"
       :: List.map (fun w -> "task " ^ w) (workers p))
      @ [ "task GenApp(size).collect" ])
  in
  Buffer.add_string buf
    (Printf.sprintf
       "class GenApp {\n\
       \  int n;\n\
       \  %s out;\n\
       \  GenApp(int size) { n = size; }\n\
       \  local float[[]] gen() {\n\
       \    return Gen.genCell(%d) @ Lime.range(n);\n\
       \  }\n\
       \  void collect(%s v) { out = v; }\n\
       \  static void main(int size, int steps) {\n\
       \    (%s).finish(steps);\n\
       \  }\n\
        }\n"
       out_ty p.p_data out_ty graph);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* QCheck generation                                                   *)
(* ------------------------------------------------------------------ *)

let quarter k = float_of_int k *. 0.25

let gen_fexpr : fexpr QCheck.Gen.t =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         let leaf =
           frequency
             [
               (3, return X);
               (2, return C);
               (2, map (fun k -> Lit (quarter k)) (int_range (-8) 8));
             ]
         in
         if n <= 0 then leaf
         else
           let sub = self (n / 2) in
           frequency
             [
               (2, leaf);
               (3, map2 (fun a b -> Add (a, b)) sub sub);
               (2, map2 (fun a b -> Sub (a, b)) sub sub);
               (3, map2 (fun a b -> Mul (a, b)) sub sub);
               (1, map (fun a -> Neg a) sub);
               (1, map (fun a -> Abs a) sub);
               (1, map (fun a -> Sqrt1p a) sub);
               (1, map2 (fun a b -> Min (a, b)) sub sub);
               (1, map2 (fun a b -> Max (a, b)) sub sub);
               ( 1,
                 map2
                   (fun (a, b) (t, f) -> Cond (a, b, t, f))
                   (pair sub sub) (pair sub sub) );
             ])

let gen_stage : stage QCheck.Gen.t =
  let open QCheck.Gen in
  let cap = map quarter (int_range (-6) 6) in
  frequency
    [
      (3, map2 (fun cap body -> Map { cap; body }) cap gen_fexpr);
      ( 1,
        map2
          (fun (w, stride) (cap, body) -> Window { w; stride; cap; body })
          (pair (int_range 2 4) (int_range 1 3))
          (pair cap gen_fexpr) );
    ]

let gen_prog : prog QCheck.Gen.t =
  let open QCheck.Gen in
  int_range 0 9999 >>= fun p_data ->
  int_range 2 24 >>= fun p_n ->
  list_size (int_range 1 3) gen_stage >>= fun p_stages ->
  option (oneofl [ RSum; RMax; RMin ]) >>= fun p_reduce ->
  bool >>= fun p_split ->
  int_range 1 2 >>= fun p_steps ->
  return { p_data; p_n; p_stages; p_reduce; p_split; p_steps }

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

(* Structural: a shrunk candidate is always a strictly smaller tree, so
   shrinking terminates.  Subterms come first — the classic "replace the
   node by one of its children" descent — then each child is shrunk in
   place. *)
let rec shrink_fexpr (e : fexpr) : fexpr QCheck.Iter.t =
  let open QCheck.Iter in
  let bin mk a b =
    of_list [ a; b ]
    <+> (shrink_fexpr a >|= fun a' -> mk a' b)
    <+> (shrink_fexpr b >|= fun b' -> mk a b')
  in
  let un mk a = return a <+> (shrink_fexpr a >|= mk) in
  match e with
  | X | C -> empty
  | Lit f -> if f = 0.0 then empty else return (Lit 0.0)
  | Add (a, b) -> bin (fun a b -> Add (a, b)) a b
  | Sub (a, b) -> bin (fun a b -> Sub (a, b)) a b
  | Mul (a, b) -> bin (fun a b -> Mul (a, b)) a b
  | Min (a, b) -> bin (fun a b -> Min (a, b)) a b
  | Max (a, b) -> bin (fun a b -> Max (a, b)) a b
  | Neg a -> un (fun a -> Neg a) a
  | Abs a -> un (fun a -> Abs a) a
  | Sqrt1p a -> un (fun a -> Sqrt1p a) a
  | Cond (a, b, t, f) ->
      of_list [ t; f; a; b ]
      <+> (shrink_fexpr a >|= fun a' -> Cond (a', b, t, f))
      <+> (shrink_fexpr b >|= fun b' -> Cond (a, b', t, f))
      <+> (shrink_fexpr t >|= fun t' -> Cond (a, b, t', f))
      <+> (shrink_fexpr f >|= fun f' -> Cond (a, b, t, f'))

let shrink_stage (s : stage) : stage QCheck.Iter.t =
  let open QCheck.Iter in
  match s with
  | Map { cap; body } ->
      (if cap = 0.0 then empty else return (Map { cap = 0.0; body }))
      <+> (shrink_fexpr body >|= fun body -> Map { cap; body })
  | Window { w; stride; cap; body } ->
      return (Map { cap; body })
      <+> (if w > 2 then return (Window { w = 2; stride; cap; body }) else empty)
      <+> (if stride > 1 then return (Window { w; stride = 1; cap; body })
           else empty)
      <+> (shrink_fexpr body >|= fun body -> Window { w; stride; cap; body })

(* Every list with one element removed (never emptying the list). *)
let drop_one (xs : 'a list) : 'a list QCheck.Iter.t =
  if List.length xs <= 1 then QCheck.Iter.empty
  else
    QCheck.Iter.of_list
      (List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) xs) xs)

let shrink_in_place (shr : 'a -> 'a QCheck.Iter.t) (xs : 'a list) :
    'a list QCheck.Iter.t =
  let open QCheck.Iter in
  List.mapi
    (fun i x ->
      shr x >|= fun x' -> List.mapi (fun j y -> if j = i then x' else y) xs)
    xs
  |> List.fold_left ( <+> ) empty

let shrink_prog (p : prog) : prog QCheck.Iter.t =
  let open QCheck.Iter in
  (if p.p_n > 2 then
     of_list
       (List.sort_uniq compare
          [ { p with p_n = 2 }; { p with p_n = p.p_n / 2 } ])
   else empty)
  <+> (drop_one p.p_stages >|= fun p_stages -> { p with p_stages })
  <+> (if p.p_reduce <> None then return { p with p_reduce = None } else empty)
  <+> (if split_effective p then return { p with p_split = false } else empty)
  <+> (if p.p_steps > 1 then return { p with p_steps = 1 } else empty)
  <+> (if p.p_data <> 0 then return { p with p_data = 0 } else empty)
  <+> (shrink_in_place shrink_stage p.p_stages >|= fun p_stages ->
       { p with p_stages })

(* ------------------------------------------------------------------ *)
(* Arbitrary + corpus helpers                                          *)
(* ------------------------------------------------------------------ *)

let print_prog (p : prog) : string =
  Printf.sprintf
    "// lime.fuzz program: n=%d steps=%d stages=%d reduce=%s split=%b\n%s"
    p.p_n p.p_steps
    (List.length p.p_stages)
    (match p.p_reduce with
    | None -> "none"
    | Some r -> reduce_op r)
    (split_effective p) (to_source p)

let arbitrary : prog QCheck.arbitrary =
  QCheck.make gen_prog ~print:print_prog ~shrink:shrink_prog

(* A reproducible corpus: the bench harness uses this as its traffic
   pool, the CI gate as its fixed-seed budget. *)
let corpus ~seed (count : int) : prog list =
  let rand = Random.State.make [| seed; 0x4c696d65 |] in
  List.init count (fun _ -> QCheck.Gen.generate1 ~rand gen_prog)
