(** Communication cost accounting (paper §4.3, §5.3 / Fig 9).

    Offloading a filter firing moves data Java → C → device and back
    (Fig 6).  Each leg is accounted separately so the harness can print the
    Fig 9 breakdown:

    - Java-side marshaling (serialize to the wire format),
    - the JNI crossing,
    - C-side marshaling (wire format → device layout),
    - OpenCL API setup (buffers, kernel arguments, enqueues) — mostly
      constant, but buffer registration grows with very large buffers,
      which reproduces the paper's JG-RPES "anomaly" (40% setup),
    - the PCIe transfer,
    - kernel execution. *)

type phases = {
  mutable java_marshal_s : float;
  mutable jni_s : float;
  mutable c_marshal_s : float;
  mutable setup_s : float;
  mutable pcie_s : float;
  mutable kernel_s : float;
  mutable host_s : float;  (** host-resident task work (bytecode) *)
}

let zero () =
  {
    java_marshal_s = 0.0;
    jni_s = 0.0;
    c_marshal_s = 0.0;
    setup_s = 0.0;
    pcie_s = 0.0;
    kernel_s = 0.0;
    host_s = 0.0;
  }

let add a b =
  a.java_marshal_s <- a.java_marshal_s +. b.java_marshal_s;
  a.jni_s <- a.jni_s +. b.jni_s;
  a.c_marshal_s <- a.c_marshal_s +. b.c_marshal_s;
  a.setup_s <- a.setup_s +. b.setup_s;
  a.pcie_s <- a.pcie_s +. b.pcie_s;
  a.kernel_s <- a.kernel_s +. b.kernel_s;
  a.host_s <- a.host_s +. b.host_s

let total p =
  p.java_marshal_s +. p.jni_s +. p.c_marshal_s +. p.setup_s +. p.pcie_s
  +. p.kernel_s +. p.host_s

let communication p = total p -. p.kernel_s -. p.host_s

(** OpenCL API setup time for one buffer of [bytes].  The constant covers
    the create/set-arg/enqueue calls; very large buffers additionally pay
    per-byte registration/pinning — the JG-RPES anomaly of Fig 9 (its
    12.8MB input buffer is the only one to cross the threshold). *)
let setup_seconds (bytes : int) : float =
  let base = 9.0e-6 in
  let large_penalty =
    if bytes > 8 * 1024 * 1024 then float_of_int bytes *. 1.5e-9 else 0.0
  in
  base +. (float_of_int bytes *. 0.05e-9) +. large_penalty

let pcie_seconds (d : Gpusim.Device.t) (bytes : int) : float =
  if d.Gpusim.Device.pcie_gbs <= 0.0 then 0.0
  else
    8.0e-6 +. (float_of_int bytes /. (d.Gpusim.Device.pcie_gbs *. 1e9))

(** Cost of moving one value across the host↔device boundary in ONE
    direction: Java marshal, one JNI crossing, C marshal, buffer setup and
    the PCIe leg.  An offloaded firing is two of these (up + down); the
    multi-device scheduler prices each pipeline edge with exactly one per
    crossing, so a device→device edge is honestly two (down + up). *)
let transfer_phases (d : Gpusim.Device.t) ?(serializer = Marshal.Custom)
    ?(elem_bytes = 4) ~(bytes : int) () : phases =
  let p = zero () in
  p.java_marshal_s <- Marshal.java_marshal_seconds ~serializer ~elem_bytes bytes;
  p.jni_s <- Marshal.jni_seconds;
  p.c_marshal_s <-
    (if Marshal.needs_c_marshal serializer then Marshal.c_marshal_seconds bytes
     else 0.0);
  p.setup_s <- setup_seconds bytes;
  p.pcie_s <- pcie_seconds d bytes;
  p

(** Cost of one offloaded firing, excluding the kernel itself: the upload
    of [in_bytes] plus the download of [out_bytes]. *)
let offload_phases (d : Gpusim.Device.t) ?(serializer = Marshal.Custom)
    ?(elem_bytes = 4) ~(in_bytes : int) ~(out_bytes : int) () : phases =
  let p = transfer_phases d ~serializer ~elem_bytes ~bytes:in_bytes () in
  add p (transfer_phases d ~serializer ~elem_bytes ~bytes:out_bytes ());
  p

let pp ppf p =
  let t = total p in
  let pct x = if t <= 0.0 then 0.0 else 100.0 *. x /. t in
  Fmt.pf ppf
    "total %.3gms: kernel %.1f%%, java-marshal %.1f%%, jni %.1f%%, c-marshal \
     %.1f%%, setup %.1f%%, pcie %.1f%%, host %.1f%%"
    (t *. 1e3) (pct p.kernel_s) (pct p.java_marshal_s) (pct p.jni_s)
    (pct p.c_marshal_s) (pct p.setup_s) (pct p.pcie_s) (pct p.host_s)
