(** Task-graph execution engine.

    Implements the semantics of the [task], [=>] and [finish] operators: a
    linear pipeline of workers fired repeatedly.  Tasks classified as
    offloadable filters (static [local] workers with value ports containing
    a map or reduce) run "on the device": their input is really marshalled
    to the wire format, really decoded on the simulated C side, the kernel
    executes functionally in the reference interpreter (optionally, for
    validation) and its *time* comes from the device model; everything else
    runs in the bytecode interpreter on the host.

    The engine attaches to an {!Lime_ir.Interp.state} as its [finish] hook,
    so Lime programs that build and finish task graphs execute transparently
    — this is the moral equivalent of the paper's JVM + OpenCL runtime
    pairing. *)

module Ir = Lime_ir.Ir
module Value = Lime_ir.Value
module Interp = Lime_ir.Interp
module Kernel = Lime_gpu.Kernel
module Memopt = Lime_gpu.Memopt

let src_log = Logs.Src.create "lime.runtime" ~doc:"Lime task-graph runtime"

module Log = (val Logs.src_log src_log : Logs.LOG)

type config = {
  device : Gpusim.Device.t option;  (** [None] = run everything as bytecode *)
  opt_config : Memopt.config;
  functional : bool;
      (** execute offloaded kernels for real (validation) rather than
          producing a zero-filled result of the right shape *)
  serializer : Marshal.serializer;
  placement : (string * Gpusim.Device.t option) list option;
      (** per-task placement (task name → device, [None] = host).  When
          set, it overrides [device] per stage: each offloadable task runs
          on its own assigned device, tasks absent from the list stay on
          the host, and adjacent stages sharing a device keep the value
          resident (no transfer charged on that edge).  [None] = the
          legacy single-device mode. *)
}

let default_config =
  {
    device = Some Gpusim.Device.gtx580;
    opt_config = Memopt.config_all;
    functional = true;
    serializer = Marshal.Custom;
    placement = None;
  }

type offloaded = {
  of_kernel : Kernel.kernel;
  of_decisions : Memopt.decision list;
  of_module : Ir.modul;  (** kernel wrapped for functional execution *)
  of_device : Gpusim.Device.t;  (** the device this stage fires on *)
}

(** Observation hook for service instrumentation: called once per task
    firing with that firing's own phase breakdown (device firings carry
    the marshal/JNI/setup/PCIe/kernel legs; host firings only [host_s]).
    No-op by default; [lime.service] installs its metrics here.  This is
    the legacy single-slot hook — prefer {!on_firing}, which composes.
    The slot is routed through the keyed registry under the key
    ["legacy"], so overwriting it never clobbers keyed observers (and
    vice versa). *)
let firing_observer :
    (task:string -> device:bool -> phases:Comm.phases -> unit) ref =
  ref (fun ~task:_ ~device:_ ~phases:_ -> ())

(** Everything observable about one task firing.  Device firings carry the
    device model, the analytic launch profile and the kernel-time
    breakdown; host firings only the task name and its [host_s] leg. *)
type firing_info = {
  fi_task : string;
  fi_device : bool;
  fi_phases : Comm.phases;
  fi_dev : Gpusim.Device.t option;
  fi_profile : Gpusim.Profile.t option;
  fi_breakdown : Gpusim.Model.breakdown option;
  fi_counters : Gpusim.Counters.t option;
  fi_bindings : Gpusim.Model.array_binding list;
}

let firing_hooks : (string * (firing_info -> unit)) list ref = ref []

(* Registration is read-modify-write on an immutable assoc list, guarded
   by a mutex; notification reads a snapshot without locking. *)
let hooks_mu = Mutex.create ()

let on_firing ~key f =
  Mutex.lock hooks_mu;
  firing_hooks := (key, f) :: List.remove_assoc key !firing_hooks;
  Mutex.unlock hooks_mu

let remove_firing_observer key =
  Mutex.lock hooks_mu;
  firing_hooks := List.remove_assoc key !firing_hooks;
  Mutex.unlock hooks_mu

let () =
  on_firing ~key:"legacy" (fun fi ->
      !firing_observer ~task:fi.fi_task ~device:fi.fi_device
        ~phases:fi.fi_phases)

let notify_firing (fi : firing_info) =
  List.iter (fun (_, f) -> f fi) !firing_hooks

type report = {
  mutable firings : int;
  mutable offloaded_tasks : string list;
  mutable host_tasks : string list;
  mutable placements : (string * Gpusim.Device.t option) list;
      (** per-task placement ground truth, in pipeline order: the device a
          task actually fired on, [None] for host tasks *)
  phases : Comm.phases;
  mutable last_value : Value.t;  (** value that reached the sink last *)
  mutable overlapped_s : float;
      (** simulated wall-clock of the firings with double-buffered overlap
          ({!Schedule.overlapped_makespan}); [Comm.total phases] is the
          serial clock *)
}

let fresh_report () =
  {
    firings = 0;
    offloaded_tasks = [];
    host_tasks = [];
    placements = [];
    phases = Comm.zero ();
    last_value = Value.VUnit;
    overlapped_s = 0.0;
  }

(* ------------------------------------------------------------------ *)
(* Kernel output shape inference                                       *)
(* ------------------------------------------------------------------ *)

(** Shape of the kernel result: dynamic dimensions take the trip count of
    the output-producing parallel loop ([rows]); when absent, fall back to
    the input's outer length. *)
let output_shape ?rows (k : Kernel.kernel) (input : Value.t) :
    int array option =
  match k.Kernel.k_ret with
  | Ir.TArr aty ->
      let outer =
        match rows with
        | Some r -> r
        | None -> (
            match input with
            | Value.VArr a when Value.rank a > 0 -> a.Value.shape.(0)
            | _ -> 0)
      in
      Some
        (Array.of_list
           (List.map
              (function Ir.DFixed n -> n | Ir.DDyn -> outer)
              aty.Ir.dims))
  | _ -> None

let zero_result ?rows (k : Kernel.kernel) (input : Value.t) : Value.t =
  match (k.Kernel.k_ret, output_shape ?rows k input) with
  | Ir.TArr aty, Some shape ->
      Value.VArr (Value.make_arr ~is_value:true aty.Ir.elem shape)
  | Ir.TScalar Ir.SFloat, _ -> Value.VFloat 0.0
  | Ir.TScalar Ir.SDouble, _ -> Value.VDouble 0.0
  | Ir.TScalar Ir.SLong, _ -> Value.VLong 0L
  | Ir.TScalar _, _ -> Value.VInt 0
  | _ -> Value.VUnit

(* ------------------------------------------------------------------ *)
(* Device-side execution of one firing                                 *)
(* ------------------------------------------------------------------ *)

let shapes_of_args (k : Kernel.kernel) (args : Value.t list) :
    (string * int array) list * (string * float) list =
  let shapes = ref [] and scalars = ref [] in
  List.iter2
    (fun (p, _) v ->
      match v with
      | Value.VArr a -> shapes := (p, a.Value.shape) :: !shapes
      | Value.VInt i -> scalars := (p, float_of_int i) :: !scalars
      | Value.VFloat f | Value.VDouble f -> scalars := (p, f) :: !scalars
      | Value.VLong l -> scalars := (p, Int64.to_float l) :: !scalars
      | _ -> ())
    k.Kernel.k_params args;
  (List.rev !shapes, List.rev !scalars)

let array_bindings (k : Kernel.kernel) (decisions : Memopt.decision list)
    (args : Value.t list) (result_shape : int array option) :
    Gpusim.Model.array_binding list =
  let param_bindings =
    List.filter_map
      (fun ((p, _), v) ->
        match v with
        | Value.VArr a ->
            Some
              (Gpusim.Model.binding_of_shape ~name:p ~elem:a.Value.elem
                 ~shape:a.Value.shape
                 (Memopt.placement_for decisions p))
        | _ -> None)
      (List.combine k.Kernel.k_params args)
  in
  (* bindings for kernel-local arrays with known placements (e.g. the map
     output) *)
  let local_bindings =
    List.filter_map
      (fun (d : Memopt.decision) ->
        if List.exists (fun (p, _) -> p = d.Memopt.d_array) k.Kernel.k_params
        then None
        else
          let info = d.Memopt.d_info in
          let shape =
            match (Ir.static_elem_count info.Memopt.ai_ty, result_shape) with
            | Some _, _ ->
                Array.of_list
                  (List.map
                     (function Ir.DFixed n -> n | Ir.DDyn -> 0)
                     info.Memopt.ai_ty.Ir.dims)
            | None, Some rs -> rs
            | None, None -> [| 0 |]
          in
          Some
            (Gpusim.Model.binding_of_shape ~name:d.Memopt.d_array
               ~elem:info.Memopt.ai_ty.Ir.elem ~shape d.Memopt.d_placement))
      decisions
  in
  param_bindings @ local_bindings

(** Simulate (and optionally functionally execute) one kernel firing.
    [transfer_in]/[transfer_out] say whether the input (output) actually
    crosses the host↔device boundary; an edge whose both ends share this
    stage's device keeps the value resident and charges nothing.  Returns
    the result and the firing's resource legs for the overlap clock. *)
let fire_device (cfg : config) (report : report) (off : offloaded)
    ?(transfer_in = true) ?(transfer_out = true) (input : Value.t) :
    Value.t * Schedule.leg list =
  let d = off.of_device in
  let k = off.of_kernel in
  (* 1. Java-side marshal, 2. JNI, 3. C-side decode.  The Direct
     serializer emits device layout, skipping the wire header and the
     C-side conversion (§5.3 future work). *)
  let encoded, device_input =
    match cfg.serializer with
    | Marshal.Custom ->
        let e = Marshal.encode input in
        (e, Marshal.decode (Bytes.copy e))
    | Marshal.Generic ->
        let e = Marshal.encode_generic input in
        (e, Marshal.decode (Bytes.copy e))
    | Marshal.Direct -> (
        let e = Marshal.encode_direct input in
        match input with
        | Value.VArr a ->
            (e, Marshal.decode_direct ~elem:a.Value.elem ~shape:a.Value.shape e)
        | v -> (e, v))
  in
  let in_bytes = Bytes.length encoded in
  let args = [ device_input ] in
  (* timing profile also yields the output-producing loop's trip count *)
  let shapes, scalars = shapes_of_args k args in
  let prof = Gpusim.Profile.profile k off.of_decisions ~shapes ~scalars in
  let rows = int_of_float prof.Gpusim.Profile.p_last_parfor_items in
  (* functional execution *)
  let result =
    if cfg.functional then
      let st = Interp.create off.of_module in
      Interp.call_function st k.Kernel.k_name None args
    else zero_result ~rows k device_input
  in
  (* the return path re-encodes on the device side and decodes in Java *)
  let out_encoded, result =
    match cfg.serializer with
    | Marshal.Custom | Marshal.Generic ->
        let e = Marshal.encode result in
        (e, Marshal.decode e)
    | Marshal.Direct -> (
        let e = Marshal.encode_direct result in
        match result with
        | Value.VArr a ->
            (e, Marshal.decode_direct ~elem:a.Value.elem ~shape:a.Value.shape e)
        | v -> (e, v))
  in
  let out_bytes = Bytes.length out_encoded in
  let bindings =
    array_bindings k off.of_decisions args (output_shape ~rows k device_input)
  in
  let bd, counters = Gpusim.Model.kernel_time_ex d prof bindings in
  let elem_bytes =
    match device_input with
    | Value.VArr a -> Ir.scalar_size_bytes a.Value.elem
    | _ -> 4
  in
  let transfer bytes =
    Comm.transfer_phases d ~serializer:cfg.serializer ~elem_bytes ~bytes ()
  in
  let ph_in = if transfer_in then transfer in_bytes else Comm.zero () in
  let ph_out = if transfer_out then transfer out_bytes else Comm.zero () in
  let ph = Comm.zero () in
  Comm.add ph ph_in;
  Comm.add ph ph_out;
  ph.Comm.kernel_s <- bd.Gpusim.Model.bd_total_s;
  Comm.add report.phases ph;
  (* the firing's legs in execution order, for the overlap clock: host-side
     marshal work on the host thread, PCIe on this device's link, the
     kernel on this device *)
  let host_leg p = Comm.total p -. p.Comm.pcie_s in
  let link = "link:" ^ d.Gpusim.Device.name
  and dev = "dev:" ^ d.Gpusim.Device.name in
  let legs =
    (if transfer_in then
       [
         { Schedule.lg_resource = "host"; lg_seconds = host_leg ph_in };
         { Schedule.lg_resource = link; lg_seconds = ph_in.Comm.pcie_s };
       ]
     else [])
    @ [ { Schedule.lg_resource = dev; lg_seconds = ph.Comm.kernel_s } ]
    @
    if transfer_out then
      [
        { Schedule.lg_resource = link; lg_seconds = ph_out.Comm.pcie_s };
        { Schedule.lg_resource = "host"; lg_seconds = host_leg ph_out };
      ]
    else []
  in
  notify_firing
    {
      fi_task = k.Kernel.k_name;
      fi_device = true;
      fi_phases = ph;
      fi_dev = Some d;
      fi_profile = Some prof;
      fi_breakdown = Some bd;
      fi_counters = Some counters;
      fi_bindings = bindings;
    };
  (result, legs)

(* ------------------------------------------------------------------ *)
(* Host-side execution of one firing                                   *)
(* ------------------------------------------------------------------ *)

let snapshot (c : Interp.counters) : Interp.counters =
  { c with Interp.alu = c.Interp.alu }

let counters_delta (before : Interp.counters) (after : Interp.counters) :
    Interp.counters =
  {
    Interp.alu = after.Interp.alu - before.Interp.alu;
    divs = after.Interp.divs - before.Interp.divs;
    sqrts = after.Interp.sqrts - before.Interp.sqrts;
    transcendentals = after.Interp.transcendentals - before.Interp.transcendentals;
    mem_reads = after.Interp.mem_reads - before.Interp.mem_reads;
    mem_writes = after.Interp.mem_writes - before.Interp.mem_writes;
    bounds_checks = after.Interp.bounds_checks - before.Interp.bounds_checks;
    field_accesses = after.Interp.field_accesses - before.Interp.field_accesses;
    branches = after.Interp.branches - before.Interp.branches;
    calls = after.Interp.calls - before.Interp.calls;
    alloc_bytes = after.Interp.alloc_bytes - before.Interp.alloc_bytes;
    double_ops = after.Interp.double_ops - before.Interp.double_ops;
  }

let fire_host (st : Interp.state) (report : report)
    (node : Value.task_node) (input : Value.t) : Value.t * Schedule.leg list
    =
  let td = node.Value.tk_desc in
  let fname = Ir.qualify td.Ir.td_class td.Ir.td_method in
  let args = match td.Ir.td_in with Ir.TUnit -> [] | _ -> [ input ] in
  let before = snapshot st.Interp.counters in
  let result =
    Interp.call_function st fname node.Value.tk_instance args
  in
  let delta = counters_delta before st.Interp.counters in
  let host_s = Gpusim.Device.jvm_time delta in
  report.phases.Comm.host_s <- report.phases.Comm.host_s +. host_s;
  let ph = Comm.zero () in
  ph.Comm.host_s <- host_s;
  notify_firing
    {
      fi_task = fname;
      fi_device = false;
      fi_phases = ph;
      fi_dev = None;
      fi_profile = None;
      fi_breakdown = None;
      fi_counters = None;
      fi_bindings = [];
    };
  (result, [ { Schedule.lg_resource = "host"; lg_seconds = host_s } ])

(* ------------------------------------------------------------------ *)
(* Graph execution                                                     *)
(* ------------------------------------------------------------------ *)

type prepared =
  | P_host of Value.task_node
  | P_device of Value.task_node * offloaded

let prepare (cfg : config) (md : Ir.modul) (report : report)
    (graph : Value.task_node list) : prepared list =
  List.map
    (fun node ->
      let td = node.Value.tk_desc in
      let name = Ir.qualify td.Ir.td_class td.Ir.td_method in
      (* the device this stage wants: the placement's per-task assignment
         when one is set (absent tasks stay on the host), else the global
         single-device config *)
      let want =
        match cfg.placement with
        | None -> cfg.device
        | Some map -> Option.join (List.assoc_opt name map)
      in
      match (want, Kernel.classify md td) with
      | Some d, Kernel.Offloadable ->
          let kernel = Kernel.extract md ~worker:name in
          let decisions = Memopt.optimize cfg.opt_config kernel in
          report.offloaded_tasks <- report.offloaded_tasks @ [ name ];
          report.placements <- report.placements @ [ (name, Some d) ];
          Log.debug (fun m ->
              m "offloading %s to %s:@.%s" name d.Gpusim.Device.name
                (Memopt.describe decisions));
          P_device
            ( node,
              {
                of_kernel = kernel;
                of_decisions = decisions;
                of_module = Kernel.to_module kernel;
                of_device = d;
              } )
      | _, verdict ->
          if want <> None then
            Log.debug (fun m ->
                m "task %s stays on host (%s)" name
                  (Kernel.verdict_name verdict));
          report.host_tasks <- report.host_tasks @ [ name ];
          report.placements <- report.placements @ [ (name, None) ];
          P_host node)
    graph

let run_prepared (cfg : config) (st : Interp.state) (report : report)
    (pipeline : prepared list) ~(iters : int) : unit =
  (* Residency: under an explicit placement, an edge whose both ends sit on
     the same device skips its transfer; the legacy single-device mode
     keeps the paper's accounting (every device firing pays both
     directions). *)
  let dev_of = function
    | P_host _ -> None
    | P_device (_, off) -> Some off.of_device.Gpusim.Device.name
  in
  let stages = Array.of_list pipeline in
  let resident k =
    cfg.placement <> None
    && k >= 0
    && k < Array.length stages
    && dev_of stages.(k) <> None
  in
  let same_dev j k =
    resident j && resident k && dev_of stages.(j) = dev_of stages.(k)
  in
  let first_legs : Schedule.leg list list ref = ref [] in
  for iter = 1 to iters do
    report.firings <- report.firings + 1;
    let v = ref Value.VUnit in
    Array.iteri
      (fun k p ->
        let result, legs =
          match p with
          | P_host node ->
              report.last_value <- !v;
              fire_host st report node !v
          | P_device (_, off) ->
              report.last_value <- !v;
              fire_device cfg report off
                ~transfer_in:(not (same_dev (k - 1) k))
                ~transfer_out:(not (same_dev k (k + 1)))
                !v
        in
        v := result;
        if iter = 1 then first_legs := legs :: !first_legs)
      stages
  done;
  (* all firings are identical, so the overlap clock replays the first
     firing's legs [iters] times through the wavefront simulator *)
  report.overlapped_s <-
    report.overlapped_s
    +. Schedule.overlapped_makespan ~firings:iters (List.rev !first_legs)

(** Attach this engine to an interpreter state: Lime-level
    [graph.finish(n)] calls will execute through the engine and accumulate
    into the returned report. *)
let attach (cfg : config) (st : Interp.state) : report =
  let report = fresh_report () in
  st.Interp.finish_hook <-
    (fun st graph iters ->
      let pipeline = prepare cfg st.Interp.md report graph in
      run_prepared cfg st report pipeline ~iters:(Option.value iters ~default:1));
  report

(** Convenience: run a whole program's entry point under the engine. *)
let run_program (cfg : config) (md : Ir.modul) ~cls ~meth
    (args : Value.t list) : Value.t * report =
  let st = Interp.create md in
  let report = attach cfg st in
  let v = Interp.run st ~cls ~meth args in
  (v, report)
