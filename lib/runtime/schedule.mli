(** Pipelined (double-buffered) firing schedule — the paper's §5.3 future
    work: overlap communication with computation across consecutive
    firings of a task pipeline. *)

type stages = {
  st_host_s : float;  (** Java marshal + JNI + C marshal + setup, per firing *)
  st_link_s : float;  (** PCIe up + down, per firing *)
  st_kernel_s : float;  (** device execution, per firing *)
  st_source_sink_s : float;  (** host-resident task work, per firing *)
}

val stages_of_phases : firings:int -> Comm.phases -> stages
(** Decompose accumulated phase totals into per-firing pipeline stages. *)

val serial_time : firings:int -> stages -> float
(** Wall-clock of [n] firings executed back to back (the baseline engine). *)

val pipelined_time : firings:int -> stages -> float
(** Wall-clock with double-buffered overlap: fill + (n-1) x max-stage. *)

val overlap_speedup : firings:int -> stages -> float

val worthwhile : ?threshold:float -> firings:int -> stages -> bool
(** Should the runtime enable pipelining?  True when the projected gain
    exceeds [threshold] (default 1.1). *)

type leg = {
  lg_resource : string;
      (** serialized resource the leg occupies ("host", "link:<dev>",
          "dev:<dev>") *)
  lg_seconds : float;
}

val overlapped_makespan : firings:int -> leg list list -> float
(** Wall-clock of [firings] identical passes through a placed pipeline
    (one leg list per stage, legs in execution order) with double-buffered
    overlap across firings: firing [f+1]'s legs run as soon as their
    resource frees, so transfers overlap kernels.  Generalizes
    {!pipelined_time} to per-device links and compute resources. *)
