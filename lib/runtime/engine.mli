(** Task-graph execution engine: the semantics of [task], [=>] and
    [finish].  Filters classified offloadable run "on the device" — real
    marshaling, functional kernel execution through the reference
    interpreter, and device-model timing; everything else runs as bytecode
    on the host.  Attaches to an interpreter state as its [finish] hook. *)

type config = {
  device : Gpusim.Device.t option;  (** [None] = run everything as bytecode *)
  opt_config : Lime_gpu.Memopt.config;
  functional : bool;
      (** execute offloaded kernels for real (validation) rather than
          producing a zero-filled result of the right shape *)
  serializer : Marshal.serializer;
  placement : (string * Gpusim.Device.t option) list option;
      (** per-task placement (task name → device, [None] = host).  When
          set it overrides [device] per stage; tasks absent from the list
          stay on the host, and adjacent stages sharing a device keep the
          value resident (no transfer charged on that edge).  [None] = the
          legacy single-device mode. *)
}

val default_config : config
(** GTX 580, all optimizations, functional execution, custom serializer,
    no multi-device placement. *)

type offloaded = {
  of_kernel : Lime_gpu.Kernel.kernel;
  of_decisions : Lime_gpu.Memopt.decision list;
  of_module : Lime_ir.Ir.modul;
  of_device : Gpusim.Device.t;  (** the device this stage fires on *)
}

val firing_observer :
  (task:string -> device:bool -> phases:Comm.phases -> unit) ref
(** Called once per task firing with that firing's own phase breakdown
    (device firings carry the marshal/JNI/setup/PCIe/kernel legs; host
    firings only [host_s]).  Legacy single-slot hook, routed through the
    keyed registry under the key ["legacy"]: writing it replaces only the
    previous slot occupant, never a keyed observer.  Prefer {!on_firing},
    which composes. *)

type firing_info = {
  fi_task : string;
  fi_device : bool;
  fi_phases : Comm.phases;
  fi_dev : Gpusim.Device.t option;  (** the device a device firing ran on *)
  fi_profile : Gpusim.Profile.t option;  (** analytic launch profile *)
  fi_breakdown : Gpusim.Model.breakdown option;  (** kernel-time breakdown *)
  fi_counters : Gpusim.Counters.t option;
      (** simulated hardware counters for the launch *)
  fi_bindings : Gpusim.Model.array_binding list;
      (** the launch's array bindings (empty for host firings) *)
}
(** Everything observable about one task firing.  [fi_dev], [fi_profile],
    [fi_breakdown] and [fi_counters] are [Some] exactly for device
    firings. *)

val on_firing : key:string -> (firing_info -> unit) -> unit
(** Register a keyed firing observer.  Distinct keys compose (all fire per
    firing); re-registering a key replaces that observer.  The
    [lime.service] metrics layer uses key ["metrics"], the tracer
    ["trace"], the {!firing_observer} slot ["legacy"].  Registration is
    mutex-guarded and may be called from any domain. *)

val remove_firing_observer : string -> unit
(** Remove the firing observer registered under this key (no-op if
    absent). *)

type report = {
  mutable firings : int;
  mutable offloaded_tasks : string list;
  mutable host_tasks : string list;
  mutable placements : (string * Gpusim.Device.t option) list;
      (** per-task placement ground truth, in pipeline order: the device a
          task actually fired on, [None] for host tasks *)
  phases : Comm.phases;  (** accumulated across firings *)
  mutable last_value : Lime_ir.Value.t;
      (** the value that reached the final (sink) task *)
  mutable overlapped_s : float;
      (** simulated wall-clock of the firings with double-buffered overlap
          ({!Schedule.overlapped_makespan}); [Comm.total phases] is the
          serial clock *)
}

val fresh_report : unit -> report

val output_shape :
  ?rows:int -> Lime_gpu.Kernel.kernel -> Lime_ir.Value.t -> int array option
(** Shape of the kernel result; dynamic dimensions take [rows] (the trip
    count of the output-producing parallel loop). *)

val shapes_of_args :
  Lime_gpu.Kernel.kernel ->
  Lime_ir.Value.t list ->
  (string * int array) list * (string * float) list

val array_bindings :
  Lime_gpu.Kernel.kernel ->
  Lime_gpu.Memopt.decision list ->
  Lime_ir.Value.t list ->
  int array option ->
  Gpusim.Model.array_binding list

type prepared =
  | P_host of Lime_ir.Value.task_node
  | P_device of Lime_ir.Value.task_node * offloaded

val prepare :
  config ->
  Lime_ir.Ir.modul ->
  report ->
  Lime_ir.Value.task_node list ->
  prepared list
(** Classify and compile each stage of a graph for its placement,
    recording the outcome in the report ([offloaded_tasks]/[host_tasks]/
    [placements]).  Exposed so schedulers can decide a placement from the
    graph at [finish] time and then drive execution themselves. *)

val run_prepared :
  config -> Lime_ir.Interp.state -> report -> prepared list -> iters:int -> unit
(** Fire a prepared pipeline [iters] times, accumulating into the
    report (phases, sink value, overlap clock). *)

val attach : config -> Lime_ir.Interp.state -> report
(** Install the engine as the interpreter's [finish] hook; Lime-level
    [graph.finish(n)] calls then execute through the engine and accumulate
    into the returned report. *)

val run_program :
  config ->
  Lime_ir.Ir.modul ->
  cls:string ->
  meth:string ->
  Lime_ir.Value.t list ->
  Lime_ir.Value.t * report
(** Create an interpreter, attach the engine, and call [cls.meth]. *)
