(** Communication cost accounting (paper §4.3, §5.3 / Fig 9): per-leg time
    of an offloaded firing — Java marshal, JNI, C marshal, OpenCL setup,
    PCIe, kernel, and host-resident task work. *)

type phases = {
  mutable java_marshal_s : float;
  mutable jni_s : float;
  mutable c_marshal_s : float;
  mutable setup_s : float;
  mutable pcie_s : float;
  mutable kernel_s : float;
  mutable host_s : float;
}

val zero : unit -> phases
val add : phases -> phases -> unit
val total : phases -> float

val communication : phases -> float
(** Everything except kernel and host-task time. *)

val setup_seconds : int -> float
(** OpenCL API setup for one buffer of the given size; very large buffers
    pay per-byte registration (the JG-RPES anomaly of Fig 9). *)

val pcie_seconds : Gpusim.Device.t -> int -> float

val transfer_phases :
  Gpusim.Device.t ->
  ?serializer:Marshal.serializer ->
  ?elem_bytes:int ->
  bytes:int ->
  unit ->
  phases
(** One direction of the host↔device crossing (Java marshal, one JNI hop,
    C marshal, setup, PCIe).  {!offload_phases} is two of these; the
    multi-device scheduler prices pipeline edges with one per crossing. *)

val offload_phases :
  Gpusim.Device.t ->
  ?serializer:Marshal.serializer ->
  ?elem_bytes:int ->
  in_bytes:int ->
  out_bytes:int ->
  unit ->
  phases
(** Cost of one offloaded firing, excluding the kernel itself. *)

val pp : Format.formatter -> phases -> unit
