(** Pipelined (double-buffered) firing schedule — the paper's future work.

    §5.3: "the communication costs can be hidden by well-known pipelining
    techniques that overlap communication and computation; these techniques
    lie beyond the scope of this paper."  This module implements them for
    the linear task pipelines the engine runs.

    With double buffering, firing [i]'s device kernel overlaps firing
    [i+1]'s host-side work (Java marshal + JNI + C marshal) and its PCIe
    upload, and firing [i-1]'s download/return path.  The steady-state
    period of the pipeline is the maximum of three stage times instead of
    their sum:

      serial   total = n * (host_up + up + kernel + down + host_down)
      pipelined total ≈ fill + n * max(host, up + down, kernel)

    where [fill] is one serial pass through the stages.  The host stage is
    not overlappable with itself (one JVM marshaling thread), PCIe is
    full-duplex on the paper's hardware only for small degrees, so we
    conservatively serialize up+down on the link.

    The schedule is computed from the same {!Comm.phases} the serial
    engine accounts, so the ablation benchmark can report serial vs
    pipelined end-to-end time per benchmark. *)

type stages = {
  st_host_s : float;  (** Java marshal + JNI + C marshal + setup, per firing *)
  st_link_s : float;  (** PCIe up + down, per firing *)
  st_kernel_s : float;  (** device execution, per firing *)
  st_source_sink_s : float;  (** host-resident task work, per firing *)
}

(** Decompose per-firing phase totals into pipeline stages. *)
let stages_of_phases ~(firings : int) (p : Comm.phases) : stages =
  let n = float_of_int (max 1 firings) in
  {
    st_host_s =
      (p.Comm.java_marshal_s +. p.Comm.jni_s +. p.Comm.c_marshal_s
      +. p.Comm.setup_s)
      /. n;
    st_link_s = p.Comm.pcie_s /. n;
    st_kernel_s = p.Comm.kernel_s /. n;
    st_source_sink_s = p.Comm.host_s /. n;
  }

(** Wall-clock of [n] firings executed serially (the baseline engine). *)
let serial_time ~(firings : int) (st : stages) : float =
  float_of_int firings
  *. (st.st_host_s +. st.st_link_s +. st.st_kernel_s +. st.st_source_sink_s)

(** Wall-clock of [n] firings with double-buffered overlap.

    The pipeline has three overlappable resources: the host thread
    (marshaling plus the source/sink work), the PCIe link, and the device.
    Steady state advances one firing per [max] of the three; filling and
    draining cost one pass through the remaining stages. *)
let pipelined_time ~(firings : int) (st : stages) : float =
  if firings <= 0 then 0.0
  else
    let host = st.st_host_s +. st.st_source_sink_s in
    let period = Float.max host (Float.max st.st_link_s st.st_kernel_s) in
    let fill = host +. st.st_link_s +. st.st_kernel_s in
    fill +. (float_of_int (firings - 1) *. period)

(** Speedup of pipelining for a given per-firing profile. *)
let overlap_speedup ~(firings : int) (st : stages) : float =
  serial_time ~firings st /. pipelined_time ~firings st

(** The pipeline is only worth its buffers when communication is a
    significant share; the runtime enables it when the projected gain
    exceeds [threshold] (default 10%). *)
let worthwhile ?(threshold = 1.1) ~(firings : int) (st : stages) : bool =
  overlap_speedup ~firings st >= threshold

(* ------------------------------------------------------------------ *)
(* Multi-resource overlapped makespan                                   *)
(* ------------------------------------------------------------------ *)

type leg = {
  lg_resource : string;
      (** the serialized resource this leg occupies ("host", "link:<dev>",
          "dev:<dev>") *)
  lg_seconds : float;
}

(** Wall-clock of [firings] identical passes through a placed pipeline,
    with double-buffered overlap across firings.

    Each stage is a list of legs executed in order on named serialized
    resources; legs of one firing chain through the stages, and a resource
    runs one leg at a time.  The simulation advances in software-pipeline
    wavefronts — in round [r], firing [r - s] occupies stage [s] — so
    consecutive firings overlap exactly as the double-buffered engine
    fires them: stage [k+1]'s transfer legs run while stage [k]'s kernel
    leg of the next firing occupies the device.  Within a round, deeper
    stages (older firings) claim their resources first.

    For a single-device three-resource pipeline this converges to
    {!pipelined_time}'s [fill + (n-1) * max] shape; the generalization is
    what the multi-device scheduler's analytic model predicts, and the
    engine reports this simulated clock so the two can be compared. *)
(* Busy intervals of one serialized resource, sorted by start time.
   [book] places a leg at the earliest gap that both fits it and starts
   no earlier than [ready] — backfilling matters: a leg stalled on its
   firing's chain (waiting for PCIe or a kernel) must not waste its
   resource's idle window, or a pipeline whose host thread is touched at
   both ends of every crossing degrades to nearly serial. *)
type booking = { mutable busy : (float * float) list }

let book (b : booking) ~(ready : float) ~(dur : float) : float =
  if dur <= 0.0 then ready
  else begin
    (* find the earliest feasible start, walking the sorted intervals *)
    let rec place start = function
      | [] -> start
      | (s, e) :: rest ->
          if start +. dur <= s then start else place (Float.max start e) rest
    in
    let start = place ready b.busy in
    let fin = start +. dur in
    (* insert, keeping the list sorted and merging touching neighbours *)
    let rec insert = function
      | [] -> [ (start, fin) ]
      | (s, e) :: rest when e <= start ->
          if e = start then
            (* coalesce with the predecessor *)
            (s, fin) :: rest
          else (s, e) :: insert rest
      | (s, e) :: rest when fin <= s ->
          if fin = s then (start, e) :: rest else (start, fin) :: (s, e) :: rest
      | overlapping :: _ ->
          ignore overlapping;
          assert false (* [place] never yields an overlap *)
    in
    b.busy <- insert b.busy;
    fin
  end

let overlapped_makespan ~(firings : int) (stages : leg list list) : float =
  if firings <= 0 || stages = [] then 0.0
  else
    let legs = Array.of_list (List.map Array.of_list stages) in
    let nstages = Array.length legs in
    let bookings : (string, booking) Hashtbl.t = Hashtbl.create 8 in
    let booking_of r =
      match Hashtbl.find_opt bookings r with
      | Some b -> b
      | None ->
          let b = { busy = [] } in
          Hashtbl.add bookings r b;
          b
    in
    (* finish.(f) = completion time of the stage [f]'s firing most recently
       processed; doubles as the data-ready time for its next stage.
       Firings are released in wavefront order; within a firing the legs
       chain, and each leg books the earliest gap on its resource. *)
    let finish = Array.make firings 0.0 in
    let makespan = ref 0.0 in
    for round = 0 to firings - 1 + nstages - 1 do
      for s = nstages - 1 downto 0 do
        let f = round - s in
        if f >= 0 && f < firings then begin
          let t = ref finish.(f) in
          Array.iter
            (fun leg ->
              let b = booking_of leg.lg_resource in
              t := book b ~ready:!t ~dur:leg.lg_seconds)
            legs.(s);
          finish.(f) <- !t;
          if s = nstages - 1 then makespan := Float.max !makespan !t
        end
      done
    done;
    !makespan
