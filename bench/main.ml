(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation (§5) from the simulated platforms, runs Bechamel
    micro-benchmarks of the compiler pipeline itself, and emits
    machine-readable perf results for regression tracking.

    Usage:
      dune exec bench/main.exe            — everything
      dune exec bench/main.exe -- table1 table2 table3 fig7a fig7b fig8 fig9
                                           marshal-ablation glue compiler
      dune exec bench/main.exe -- --quick --json BENCH_ci.json
      dune exec bench/main.exe -- --quick --baseline BENCH_ci.json
*)

module E = Lime_benchmarks.Experiments
module Benchjson = Lime_benchmarks.Benchjson
module Device = Gpusim.Device
module Sketch = Lime_service.Sketch

(* Streaming percentiles without retaining the stream: the same sketch
   the daemon serves from /metrics, so bench and daemon quote the same
   estimator (offline sorts survive only in the agreement gate). *)
let sketch_pct sk q =
  match Sketch.quantile sk q with Some v -> v | None -> 0.0

let section title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '=')

let run_table1 () =
  section "Table 1 — programming model comparison";
  print_endline (E.table1 ())

let run_table2 () =
  section "Table 2 — evaluation platforms";
  print_endline (E.table2 ())

let run_table3 () =
  section "Table 3 — benchmark suite";
  print_endline (E.table3 ())

let run_fig7a () =
  section "Figure 7(a) — end-to-end speedup, CPU (Core i7)";
  print_endline (E.render_fig7 ~title:"CPU (Core i7), OpenCL multicore runtime" (E.fig7a ()))

let run_fig7b () =
  section "Figure 7(b) — end-to-end speedup, GPU";
  print_endline (E.render_fig7 ~title:"GPU co-execution" (E.fig7b ()))

let run_fig8 () =
  section "Figure 8 — Lime vs hand-tuned OpenCL kernel times";
  List.iter
    (fun d -> print_endline (E.render_fig8 d (E.fig8_for d)); print_newline ())
    E.gpu_devices

let run_fig9 () =
  section "Figure 9 — computation and communication costs";
  print_endline (E.render_fig9 Device.core_i7 (E.fig9 Device.core_i7));
  print_newline ();
  print_endline (E.render_fig9 Device.gtx580 (E.fig9 Device.gtx580))

let run_marshal_ablation () =
  section "Marshaling ablation (§4.3)";
  print_endline (E.render_marshal_ablation (E.marshal_ablation Device.gtx580))

(* set by --quick before experiments run; the optimize experiment honors
   it so the CI gate stays fast *)
let quick_mode = ref false

(* --workload NAME restricts the registry-driven experiments; names are
   validated against the registry up front (see Registry.find_or_err). *)
let workload_filter = ref Lime_benchmarks.Registry.workloads

(* Beam-searched rewrite schedules vs the Fig 8 sweep, every registry
   workload x every Table 2 device.  Doubles as a gate: the beam winner
   must never model slower than the best Fig 8 configuration (it is
   seeded with the canned sequences), and on the TMatMul showcase it must
   be strictly faster — that workload exists because the Fig 8 space
   cannot optimize it. *)
let run_optimize () =
  section "Optimizer — beam-searched schedules vs best Fig 8 config";
  let failed = ref false in
  List.iter
    (fun d ->
      let rows = E.optimize_rows ~quick:!quick_mode d in
      print_endline (E.render_optimize d rows);
      print_newline ();
      List.iter
        (fun (r : E.optimize_row) ->
          if r.E.op_beam_s > r.E.op_fig8_s +. 1e-15 then begin
            Printf.printf "FAIL: %s on %s: beam %.3e > fig8 %.3e\n"
              r.E.op_bench d.Device.name r.E.op_beam_s r.E.op_fig8_s;
            failed := true
          end;
          if r.E.op_bench = "TMatMul" && r.E.op_beam_s >= r.E.op_fig8_s
          then begin
            Printf.printf
              "FAIL: TMatMul on %s: beam %.3e not strictly better than \
               fig8 %.3e\n"
              d.Device.name r.E.op_beam_s r.E.op_fig8_s;
            failed := true
          end)
        rows)
    (E.gpu_devices @ [ Device.core_i7 ]);
  if !failed then exit 1

(* Multi-device placement vs the best single device, every pipelined
   registry workload.  Doubles as a gate: the searched placement must
   never model slower than the best single device (the search is seeded
   with the single-device baselines), it must be strictly faster on at
   least one workload (N-Body Pipe exists because a single device cannot
   overlap its two n² kernels), and the placed engine's sink values must
   be bit-exact against the single-device engine. *)
let run_multidev () =
  section "Multi-device — placement search vs best single device";
  let rows = E.multidev_rows ~quick:!quick_mode () in
  print_endline (E.render_multidev rows);
  print_newline ();
  let failed = ref false in
  let strict = ref 0 in
  List.iter
    (fun (r : E.multidev_row) ->
      if r.E.md_placed_s > r.E.md_single_s +. 1e-15 then begin
        Printf.printf "FAIL: %s: placed %.3e slower than best single %s %.3e\n"
          r.E.md_bench r.E.md_placed_s r.E.md_best_single r.E.md_single_s;
        failed := true
      end;
      if r.E.md_placed_s < r.E.md_single_s -. 1e-15 then incr strict;
      if not r.E.md_bitexact then begin
        Printf.printf
          "FAIL: %s: multi-device sink drifts from the single-device engine\n"
          r.E.md_bench;
        failed := true
      end)
    rows;
  if !strict = 0 then begin
    print_endline
      "FAIL: no workload where the placement strictly beats the best \
       single device";
    failed := true
  end
  else
    Printf.printf
      "gate: placed <= best single on all %d workloads, strictly better on \
       %d, sinks bit-exact — ok\n"
      (List.length rows) !strict;
  if !failed then exit 1

(* Correctness evidence in the bench log: run the differential checks at
   test scale for all nine benchmarks. *)
let run_validate () =
  section "Validation — kernels vs independent OCaml references (small inputs)";
  Printf.printf "%-22s %10s
" "Benchmark" "match";
  List.iter
    (fun (b : Lime_benchmarks.Bench_def.t) ->
      let open Lime_benchmarks.Bench_def in
      let c = Lime_benchmarks.Registry.compile_small b in
      let input = b.input_small () in
      let st = Lime_ir.Interp.create c.Lime_gpu.Pipeline.cp_module in
      let cls, meth =
        match String.split_on_char '.' b.worker with
        | [ c; m ] -> (c, m)
        | _ -> assert false
      in
      let got = Lime_ir.Interp.run st ~cls ~meth [ input ] in
      let ok =
        Lime_ir.Value.approx_equal ~rtol:2e-4 ~atol:1e-5 got
          (b.reference input)
      in
      Printf.printf "%-22s %10s
" b.name (if ok then "ok" else "MISMATCH");
      if not ok then exit 1)
    !workload_filter

let run_overlap () =
  section "Future work (§5.3) — overlap + direct marshaling ablation";
  print_endline (E.render_overlap Device.gtx580 (E.overlap Device.gtx580))

let run_glue () =
  section "Host-glue volume (§2: 'a dozen OpenCL procedures, 182 lines')";
  Printf.printf "%-22s %12s %12s\n" "Benchmark" "glue lines" "kernel lines";
  List.iter
    (fun (name, glue, kern) ->
      Printf.printf "%-22s %12d %12d\n" name glue kern)
    (E.glue_volume ());
  let c = Lime_benchmarks.Registry.compile Lime_benchmarks.Nbody.single in
  let glue = Lime_gpu.Hostgen.generate c.Lime_gpu.Pipeline.cp_kernel in
  Printf.printf "\nDistinct OpenCL API procedures used by the glue: %d\n"
    (List.length (Lime_gpu.Hostgen.api_calls_used glue))

(* Cache effectiveness of the compile service: compile the whole suite
   cold, then again warm, and report the hit rate and the amortized
   compile-time saving. *)
let run_service () =
  section "Compile service — cache hit rate, warm vs cold";
  let module Service = Lime_service.Service in
  let module Kcache = Lime_service.Kcache in
  let svc = Service.create ~capacity:32 () in
  let compile_suite () =
    let t0 = Sys.time () in
    List.iter
      (fun (b : Lime_benchmarks.Bench_def.t) ->
        ignore
          (Service.compile svc ~name:b.Lime_benchmarks.Bench_def.name
             ~worker:b.Lime_benchmarks.Bench_def.worker
             b.Lime_benchmarks.Bench_def.source))
      Lime_benchmarks.Registry.all;
    Sys.time () -. t0
  in
  let cold = compile_suite () in
  let warm = compile_suite () in
  let s = Service.stats svc in
  Printf.printf "suite size:        %d benchmarks\n"
    (List.length Lime_benchmarks.Registry.all);
  Printf.printf "cold pass:         %.2f ms (%d misses)\n" (cold *. 1e3)
    s.Kcache.misses;
  Printf.printf "warm pass:         %.2f ms (%d hits)\n" (warm *. 1e3)
    s.Kcache.hits;
  Printf.printf "hit rate:          %.0f%%\n"
    (100.0 *. float_of_int s.Kcache.hits
    /. float_of_int (s.Kcache.hits + s.Kcache.misses));
  Printf.printf "warm/cold ratio:   %.3f\n"
    (if cold > 0.0 then warm /. cold else 0.0);
  (* coalescing: a burst of identical in-flight requests compiles once *)
  let b = Lime_benchmarks.Nbody.single in
  let burst =
    List.init 8 (fun _ ->
        Service.request ~worker:b.Lime_benchmarks.Bench_def.worker
          b.Lime_benchmarks.Bench_def.source)
  in
  ignore (Service.compile_many svc burst);
  Printf.printf "coalesced burst:   8 identical requests -> %d coalesced\n"
    s.Kcache.coalesced

(* Scaling of the domain-pool batch path: compile the whole suite cold at
   1/2/4/8-way parallelism (fresh service each run, so every batch really
   compiles) and report wall-clock speedup plus the cache-contention
   counters of the sharded Kcache.  Wall-clock, not CPU time: Sys.time
   sums across domains and would hide the parallelism. *)
let run_parallel () =
  section "Parallel compile service — domain-pool batch scaling";
  let module Service = Lime_service.Service in
  let module Kcache = Lime_service.Kcache in
  let suite = Lime_benchmarks.Registry.all in
  let requests () =
    List.map
      (fun (b : Lime_benchmarks.Bench_def.t) ->
        Service.request ~name:b.Lime_benchmarks.Bench_def.name
          ~worker:b.Lime_benchmarks.Bench_def.worker
          b.Lime_benchmarks.Bench_def.source)
      suite
  in
  let reps = 3 in
  let time_batch jobs =
    (* best of [reps] cold batches: the pool is created outside the timed
       region, so domain spawn cost is not billed to the batch *)
    let best = ref infinity and stats = ref None in
    for _ = 1 to reps do
      let svc = Service.create ~capacity:32 ~jobs () in
      let reqs = requests () in
      let t0 = Unix.gettimeofday () in
      let results = Service.compile_many svc reqs in
      let dt = Unix.gettimeofday () -. t0 in
      List.iter
        (function
          | Ok _ -> ()
          | Error d ->
              prerr_endline (Lime_support.Diag.to_string d);
              exit 1)
        results;
      if dt < !best then begin
        best := dt;
        stats := Some (Service.stats svc)
      end;
      Service.shutdown svc
    done;
    (!best, Option.get !stats)
  in
  Printf.printf "suite: %d benchmarks, cold each run; host cores: %d\n\n"
    (List.length suite)
    (Domain.recommended_domain_count ());
  let rows = List.map (fun jobs -> (jobs, time_batch jobs)) [ 1; 2; 4; 8 ] in
  let base = match rows with (_, (dt, _)) :: _ -> dt | [] -> 1.0 in
  Printf.printf "%-6s %12s %9s %8s %8s %11s\n" "jobs" "batch ms" "speedup"
    "misses" "hits" "contended";
  List.iter
    (fun (jobs, (dt, (s : Kcache.stats))) ->
      Printf.printf "%-6d %12.2f %8.2fx %8d %8d %11d\n" jobs (dt *. 1e3)
        (base /. dt) s.Kcache.misses s.Kcache.hits s.Kcache.contended)
    rows;
  print_newline ();
  print_endline
    "speedup is relative to jobs=1 (the sequential service); with fewer \
     host\ncores than jobs the pool degrades to time-slicing and speedup \
     stays ~1x."

(* The compile daemon against the in-process service: cold and warm
   suite passes over the socket, a concurrent multi-client pass, and the
   per-request wire overhead relative to direct Service.compile calls on
   an equally warm cache. *)
let run_server () =
  section "Compile daemon — socket round-trips vs in-process service";
  let module Service = Lime_service.Service in
  let module Server = Lime_server.Server in
  let module Client = Lime_server.Client in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let suite = Lime_benchmarks.Registry.all in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "limed-bench-%d.sock" (Unix.getpid ()))
  in
  let server = Server.create (Server.default_config ~socket:sock) in
  let dom = Domain.spawn (fun () -> Server.run server) in
  let connect () =
    match Client.connect sock with
    | Ok cl -> cl
    | Error msg ->
        prerr_endline msg;
        exit 1
  in
  let suite_via cl =
    List.iter
      (fun (b : Lime_benchmarks.Bench_def.t) ->
        match
          Client.compile cl ~name:b.Lime_benchmarks.Bench_def.name
            ~worker:b.Lime_benchmarks.Bench_def.worker
            b.Lime_benchmarks.Bench_def.source_small
        with
        | Ok _ -> ()
        | Error f ->
            prerr_endline (Client.failure_to_string f);
            exit 1)
      suite
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  (* per-request latencies of a pass, recorded into a quantile sketch *)
  let suite_via_sketched cl sk =
    List.iter
      (fun (b : Lime_benchmarks.Bench_def.t) ->
        let t0 = Unix.gettimeofday () in
        (match
           Client.compile cl ~name:b.Lime_benchmarks.Bench_def.name
             ~worker:b.Lime_benchmarks.Bench_def.worker
             b.Lime_benchmarks.Bench_def.source_small
         with
        | Ok _ -> ()
        | Error f ->
            prerr_endline (Client.failure_to_string f);
            exit 1);
        Sketch.add sk (Unix.gettimeofday () -. t0))
      suite
  in
  let cl = connect () in
  let cold = time (fun () -> suite_via cl) in
  let warm = time (fun () -> suite_via cl) in
  Client.close cl;
  let n_clients = 4 in
  (* each client domain records into its own sketch; the merged view is
     exact (bucket counts add), which is the point of a mergeable
     estimator — no cross-domain latency array to assemble *)
  let con_sk = Sketch.create () in
  let concurrent =
    time (fun () ->
        let doms =
          List.init n_clients (fun _ ->
              Domain.spawn (fun () ->
                  let cl = connect () in
                  let sk = Sketch.create () in
                  suite_via_sketched cl sk;
                  Client.close cl;
                  sk))
        in
        List.iter
          (fun d -> Sketch.merge ~into:con_sk (Domain.join d))
          doms)
  in
  (* the same warm requests without the wire: an in-process service whose
     cache is equally hot *)
  let svc = Service.create ~capacity:64 () in
  let suite_local () =
    List.iter
      (fun (b : Lime_benchmarks.Bench_def.t) ->
        ignore
          (Service.compile svc ~name:b.Lime_benchmarks.Bench_def.name
             ~worker:b.Lime_benchmarks.Bench_def.worker
             b.Lime_benchmarks.Bench_def.source_small))
      suite
  in
  suite_local ();
  let local_warm = time suite_local in
  Service.shutdown svc;
  Server.drain server;
  Domain.join dom;
  let r = Server.report server in
  let n = List.length suite in
  Printf.printf "suite: %d benchmarks over %s\n\n" n sock;
  Printf.printf "cold pass:            %8.2f ms  (every request compiles)\n"
    (cold *. 1e3);
  Printf.printf "warm pass:            %8.2f ms  (every request a cache hit)\n"
    (warm *. 1e3);
  Printf.printf "%d concurrent clients: %8.2f ms  (%.0f req/s aggregate)\n"
    n_clients (concurrent *. 1e3)
    (float_of_int (n_clients * n) /. concurrent);
  Printf.printf
    "concurrent latency:   p50 %.2f ms  p99 %.2f ms  max %.2f ms  (merged \
     sketch, alpha %g)\n"
    (sketch_pct con_sk 0.5 *. 1e3)
    (sketch_pct con_sk 0.99 *. 1e3)
    (Sketch.max_seen con_sk *. 1e3)
    (Sketch.alpha con_sk);
  Printf.printf "in-process warm pass: %8.2f ms\n" (local_warm *. 1e3);
  Printf.printf "wire overhead, warm:  %8.1f us/request\n"
    ((warm -. local_warm) /. float_of_int n *. 1e6);
  Printf.printf
    "\ndaemon lifetime: %d requests, %d completed, %d rejected, %d \
     deadline, %d dropped\n"
    r.Server.rp_requests r.Server.rp_completed r.Server.rp_rejected
    r.Server.rp_deadline r.Server.rp_dropped;
  (* -------------------------------------------------------------- *)
  (* Always-on observability: the daemon keeps the trace observers
     installed and writes one access-log record per request whether or
     not the client asked for anything.  Measure that tax on the warm
     path against a daemon with both turned off, and gate it. *)
  let module Trace = Lime_service.Trace in
  let module Wire = Lime_server.Wire in
  section "Compile daemon — always-on observability overhead";
  let log_file = Filename.temp_file "limed-bench-access" ".jsonl" in
  let suite_traced cl =
    let trace =
      { Wire.tc_trace_id = Trace.fresh_trace_id (); tc_parent_span = -1 }
    in
    List.iter
      (fun (b : Lime_benchmarks.Bench_def.t) ->
        match
          Client.compile cl ~name:b.Lime_benchmarks.Bench_def.name ~trace
            ~worker:b.Lime_benchmarks.Bench_def.worker
            b.Lime_benchmarks.Bench_def.source_small
        with
        | Ok _ -> ()
        | Error f ->
            prerr_endline (Client.failure_to_string f);
            exit 1)
      suite
  in
  (* best-of-R warm passes against a dedicated daemon; [observe] keeps
     the daemon's default observability on (plus an access log), the
     baseline strips both after creation.  Each measured pass replays
     the suite [reps] times — one 9-request pass lasts ~1 ms, below what
     best-of-7 wall clocks resolve against scheduler noise — and because
     the gate compares separately-spawned daemons, each side takes the
     best across [trials] daemon instances so one unluckily-scheduled
     reactor/worker pairing can't masquerade as overhead. *)
  let reps = 20 in
  let trials = 3 in
  let measure_once ~observe ~pass =
    let pass cl = for _ = 1 to reps do pass cl done in
    let sock2 = sock ^ if observe then ".obs" else ".base" in
    let cfg = Server.default_config ~socket:sock2 in
    let cfg =
      if observe then { cfg with Server.sc_access_log = Some log_file }
      else cfg
    in
    let server = Server.create cfg in
    if not observe then begin
      Trace.uninstall ();
      Trace.set_enabled Trace.default false
    end;
    let dom = Domain.spawn (fun () -> Server.run server) in
    let cl =
      match Client.connect sock2 with
      | Ok cl -> cl
      | Error msg ->
          prerr_endline msg;
          exit 1
    in
    suite_via cl (* cold: warm the daemon's cache *);
    pass cl (* warm-up of the measured path *);
    let best = ref infinity in
    for _ = 1 to 7 do
      let dt = time (fun () -> pass cl) in
      if dt < !best then best := dt
    done;
    Client.close cl;
    Server.drain server;
    Domain.join dom;
    !best
  in
  (* interleave the three configurations across rounds so slow
     machine-wide drift hits all of them alike, and keep the per-config
     minimum *)
  let base = ref infinity and plain = ref infinity and traced = ref infinity in
  for _ = 1 to trials do
    let keep r dt = if dt < !r then r := dt in
    keep base (measure_once ~observe:false ~pass:suite_via);
    keep plain (measure_once ~observe:true ~pass:suite_via);
    keep traced (measure_once ~observe:true ~pass:suite_traced)
  done;
  let base = !base and plain = !plain and traced = !traced in
  (* the bench ran three in-process daemons; leave the process-global
     tracer the way a fresh process starts, for the experiments after us *)
  Trace.uninstall ();
  Trace.set_enabled Trace.default false;
  (try Sys.remove log_file with Sys_error _ -> ());
  let per_req dt = (dt -. base) /. float_of_int (n * reps) *. 1e6 in
  let pct dt = (dt -. base) /. base *. 100.0 in
  Printf.printf "baseline warm pass (observability off, x%d): %8.2f ms\n"
    reps (base *. 1e3);
  Printf.printf
    "always-on (observers + access log):     %8.2f ms  (%+.1f%%, %+.1f \
     us/request)\n"
    (plain *. 1e3) (pct plain) (per_req plain);
  Printf.printf
    "per-request tracing on top:             %8.2f ms  (%+.1f%%, %+.1f \
     us/request)\n"
    (traced *. 1e3) (pct traced) (per_req traced);
  (* the gate: always-on observability must cost < 5% of the warm path.
     The absolute floor absorbs scheduler noise when the whole suite
     fits in a couple of milliseconds — sub-25us/request deltas are
     below what best-of-7 wall clocks resolve. *)
  if pct plain >= 5.0 && per_req plain >= 25.0 then begin
    Printf.printf
      "FAIL: always-on observability overhead %.1f%% breaches the 5%% \
       gate\n"
      (pct plain);
    exit 1
  end
  else
    Printf.printf
      "gate: always-on overhead %.1f%% < 5%% (or < 25 us/request) — ok\n"
      (Float.max 0.0 (pct plain))

(* Span timeline of a cold-vs-warm compile through the service: the cold
   request shows the full pipeline phase breakdown nested under the cache
   lookup; the warm request is a bare hit with no pipeline spans at all. *)
let run_trace () =
  section "Observability — cold vs warm compile timeline";
  let module Service = Lime_service.Service in
  let module Trace = Lime_service.Trace in
  let b = Lime_benchmarks.Nbody.single in
  (* the service/cache spans always target the default tracer, so trace
     through it rather than a private instance *)
  let tr = Trace.default in
  Trace.reset tr;
  let svc = Service.create ~capacity:4 () in
  Trace.with_observers (fun () ->
      Trace.with_span tr ~cat:"bench" "cold" (fun () ->
          ignore
            (Service.compile svc ~name:"nbody"
               ~worker:b.Lime_benchmarks.Bench_def.worker
               b.Lime_benchmarks.Bench_def.source));
      Trace.with_span tr ~cat:"bench" "warm" (fun () ->
          ignore
            (Service.compile svc ~name:"nbody"
               ~worker:b.Lime_benchmarks.Bench_def.worker
               b.Lime_benchmarks.Bench_def.source)));
  print_string (Trace.flame tr);
  print_newline ();
  print_string (Trace.summary tr)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the compiler pipeline                  *)
(* ------------------------------------------------------------------ *)

let run_compiler_benches () =
  section "Compiler pipeline micro-benchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let b = Lime_benchmarks.Nbody.single in
  let src = b.Lime_benchmarks.Bench_def.source in
  let worker = b.Lime_benchmarks.Bench_def.worker in
  let tp = Lime_typecheck.Check.check_string src in
  let md = Lime_ir.Lower.lower_program tp in
  let kernel = Lime_gpu.Kernel.extract md ~worker in
  let decisions = Lime_gpu.Memopt.optimize Lime_gpu.Memopt.config_all kernel in
  let tests =
    [
      Test.make ~name:"parse" (Staged.stage (fun () ->
          ignore (Lime_frontend.Parser.program_of_string src)));
      Test.make ~name:"typecheck" (Staged.stage (fun () ->
          ignore (Lime_typecheck.Check.check_string src)));
      Test.make ~name:"lower" (Staged.stage (fun () ->
          ignore (Lime_ir.Lower.lower_program tp)));
      Test.make ~name:"kernel-extract" (Staged.stage (fun () ->
          ignore (Lime_gpu.Kernel.extract md ~worker)));
      Test.make ~name:"memopt" (Staged.stage (fun () ->
          ignore (Lime_gpu.Memopt.optimize Lime_gpu.Memopt.config_all kernel)));
      Test.make ~name:"opencl-codegen" (Staged.stage (fun () ->
          ignore (Lime_gpu.Opencl.generate kernel decisions)));
      Test.make ~name:"full-pipeline" (Staged.stage (fun () ->
          ignore (Lime_gpu.Pipeline.compile ~worker src)));
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"pipeline" tests)
  in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false
         ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  let rows =
    Hashtbl.fold
      (fun name r acc ->
        let est =
          match Analyze.OLS.estimates r with
          | Some (est :: _) -> est
          | _ -> Float.nan
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, est) -> Printf.printf "%-40s %14.1f ns/run\n" name est)
    rows

(* Bechamel micro-benchmarks of the runtime primitives: the real marshaling
   implementations (Fig 6) and the reference interpreter. *)
let run_runtime_benches () =
  section "Runtime micro-benchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let v =
    Lime_ir.Value.VArr
      (Lime_ir.Value.of_float_matrix 256 4
         (Array.init 1024 float_of_int))
  in
  let encoded = Lime_runtime.Marshal.encode v in
  let nb = Lime_benchmarks.Nbody.single in
  let compiled =
    Lime_gpu.Pipeline.compile ~worker:nb.Lime_benchmarks.Bench_def.worker
      nb.Lime_benchmarks.Bench_def.source
  in
  let kmod = Lime_gpu.Kernel.to_module compiled.Lime_gpu.Pipeline.cp_kernel in
  let small = nb.Lime_benchmarks.Bench_def.input_small () in
  let tests =
    [
      Test.make ~name:"marshal-encode-custom (4KB)" (Staged.stage (fun () ->
          ignore (Lime_runtime.Marshal.encode v)));
      Test.make ~name:"marshal-encode-generic (4KB)" (Staged.stage (fun () ->
          ignore (Lime_runtime.Marshal.encode_generic v)));
      Test.make ~name:"marshal-encode-direct (4KB)" (Staged.stage (fun () ->
          ignore (Lime_runtime.Marshal.encode_direct v)));
      Test.make ~name:"marshal-decode (4KB)" (Staged.stage (fun () ->
          ignore (Lime_runtime.Marshal.decode encoded)));
      Test.make ~name:"interp-nbody-64 (kernel)" (Staged.stage (fun () ->
          let st = Lime_ir.Interp.create kmod in
          ignore
            (Lime_ir.Interp.call_function st "NBody.computeForces" None
               [ small ])));
      Test.make ~name:"profile-nbody (analytic)" (Staged.stage (fun () ->
          let k = compiled.Lime_gpu.Pipeline.cp_kernel in
          ignore
            (Gpusim.Profile.profile k compiled.cp_decisions
               ~shapes:[ ("particles", [| 4096; 4 |]) ]
               ~scalars:[])));
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"runtime" tests) in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  Hashtbl.fold
    (fun name r acc ->
      let est =
        match Analyze.OLS.estimates r with
        | Some (est :: _) -> est
        | _ -> Float.nan
      in
      (name, est) :: acc)
    results []
  |> List.sort compare
  |> List.iter (fun (name, est) ->
         Printf.printf "%-44s %14.1f ns/run
" name est)

(* Generated-program traffic against the daemon (--fuzz N): a
   zipf-weighted stream drawn from a lime.fuzz corpus, the precursor to
   the fleet bench.  Unlike the registry suites, the program mix is
   novel by construction — the head of the distribution hits the cache
   tiers, the tail forces cold compiles — so this measures the daemon's
   tail latency under realistic cache pressure. *)
let run_fuzz_traffic ~count ~seed () =
  section "Compile daemon — generated-program traffic (lime.fuzz)";
  let module Server = Lime_server.Server in
  let module Client = Lime_server.Client in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let pool = max 4 (min 64 (count / 4)) in
  let items =
    Lime_fuzz.Gen.corpus ~seed pool
    |> List.map (fun p ->
           ( List.hd (List.rev (Lime_fuzz.Gen.workers p)),
             Lime_fuzz.Gen.to_source p ))
    |> Array.of_list
  in
  (* zipf(1.1) over pool ranks, inverse-cdf sampled from the
     deterministic Prng so a seed fully determines the traffic *)
  let weights =
    Array.init pool (fun r -> 1.0 /. (float_of_int (r + 1) ** 1.1))
  in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let rng = Lime_support.Prng.create (0x5a69 lxor (seed * 2654435761)) in
  let pick () =
    let x = Lime_support.Prng.float01 rng *. total in
    let acc = ref 0.0 and hit = ref (pool - 1) in
    (try
       Array.iteri
         (fun r w ->
           acc := !acc +. w;
           if x < !acc then begin
             hit := r;
             raise Exit
           end)
         weights
     with Exit -> ());
    !hit
  in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "limed-fuzz-%d.sock" (Unix.getpid ()))
  in
  (* the daemon keeps its own access log: the server-side exact
     durations the agreement gate below replays offline *)
  let log_file = Filename.temp_file "limed-fuzz-access" ".jsonl" in
  let server =
    Server.create
      {
        (Server.default_config ~socket:sock) with
        Server.sc_access_log = Some log_file;
      }
  in
  let dom = Domain.spawn (fun () -> Server.run server) in
  let cl =
    match Client.connect sock with
    | Ok cl -> cl
    | Error msg ->
        prerr_endline msg;
        exit 1
  in
  let sk = Sketch.create () in
  let origins = Hashtbl.create 4 in
  let errors = ref 0 in
  let t_all = Unix.gettimeofday () in
  for _ = 1 to count do
    let worker, source = items.(pick ()) in
    let t0 = Unix.gettimeofday () in
    (match Client.compile cl ~name:"fuzz" ~worker source with
    | Ok art ->
        let o = art.Lime_server.Wire.ar_origin in
        Hashtbl.replace origins o
          (1 + Option.value ~default:0 (Hashtbl.find_opt origins o))
    | Error f ->
        incr errors;
        prerr_endline (Client.failure_to_string f));
    Sketch.add sk (Unix.gettimeofday () -. t0)
  done;
  let wall = Unix.gettimeofday () -. t_all in
  (* scrape the daemon's windowed quantiles while it is still up *)
  let stats_text =
    match Client.stats cl with
    | Ok text -> text
    | Error f ->
        prerr_endline (Client.failure_to_string f);
        exit 1
  in
  Client.close cl;
  Server.drain server;
  Domain.join dom;
  let origin o = Option.value ~default:0 (Hashtbl.find_opt origins o) in
  let compiled = origin "compiled" in
  let hits = origin "memory" + origin "disk" in
  Printf.printf
    "pool: %d generated programs (seed %d), %d requests, zipf 1.1\n" pool
    seed count;
  Printf.printf
    "cold compiles: %d   cache hits: %d (%.0f%%: %d memory, %d disk)   \
     errors: %d\n"
    compiled hits
    (100.0 *. float_of_int hits /. float_of_int (max 1 count))
    (origin "memory") (origin "disk") !errors;
  Printf.printf
    "latency: p50 %.2f ms  p99 %.2f ms  max %.2f ms  (%.0f req/s, sketch \
     alpha %g)\n"
    (sketch_pct sk 0.5 *. 1e3)
    (sketch_pct sk 0.99 *. 1e3)
    (Sketch.max_seen sk *. 1e3)
    (float_of_int count /. wall)
    (Sketch.alpha sk);
  (* -------------------------------------------------------------- *)
  (* Agreement gate: the daemon's own windowed p50/p99 (streaming
     sketch over server-side durations) must agree with the exact
     quantiles of the same durations, replayed offline from the access
     log with the shared rank convention, within the sketch's
     documented relative-error bound. *)
  let find_sub s pat =
    let n = String.length s and m = String.length pat in
    let rec go i =
      if i + m > n then None
      else if String.sub s i m = pat then Some (i + m)
      else go (i + 1)
    in
    go 0
  in
  let json_field_string line key =
    Option.bind (find_sub line ("\"" ^ key ^ "\":\"")) (fun start ->
        Option.map
          (fun stop -> String.sub line start (stop - start))
          (String.index_from_opt line start '"'))
  in
  let json_field_float line key =
    Option.bind (find_sub line ("\"" ^ key ^ "\":")) (fun start ->
        let stop = ref start in
        while
          !stop < String.length line
          && not (List.mem line.[!stop] [ ','; '}' ])
        do
          incr stop
        done;
        float_of_string_opt (String.sub line start (!stop - start)))
  in
  (* only outcomes that were answered with a reply feed the summary *)
  let observed = [ "ok"; "compile-error"; "error" ] in
  let exact =
    In_channel.with_open_text log_file In_channel.input_lines
    |> List.filter_map (fun line ->
           match json_field_string line "outcome" with
           | Some o when List.mem o observed -> json_field_float line "duration_s"
           | _ -> None)
    |> Array.of_list
  in
  (try Sys.remove log_file with Sys_error _ -> ());
  Array.sort compare exact;
  let n_obs = Array.length exact in
  let sample name =
    let prefix = name ^ " " in
    String.split_on_char '\n' stats_text
    |> List.find_map (fun line ->
           let pl = String.length prefix in
           if String.length line > pl && String.sub line 0 pl = prefix then
             float_of_string_opt
               (String.trim (String.sub line pl (String.length line - pl)))
           else None)
  in
  let alpha = Sketch.default_alpha in
  let failed = ref false in
  (match sample "lime_server_request_seconds_summary_count" with
  | Some c when int_of_float c = n_obs -> ()
  | reported ->
      Printf.printf
        "FAIL: daemon summary count %s != %d access-log observations\n"
        (match reported with
        | Some c -> string_of_int (int_of_float c)
        | None -> "(missing)")
        n_obs;
      failed := true);
  if n_obs = 0 then begin
    print_endline "FAIL: no observed requests in the access log";
    failed := true
  end
  else
    List.iter
      (fun q ->
        let name =
          Printf.sprintf
            "lime_server_request_seconds_summary{window=\"5m\",quantile=\"%g\"}"
            q
        in
        match sample name with
        | None ->
            Printf.printf "FAIL: exposition lacks %s\n" name;
            failed := true
        | Some est ->
            let x = exact.(Sketch.rank_of q n_obs - 1) in
            let rel = Float.abs (est -. x) /. x in
            Printf.printf
              "agreement p%g: daemon %.3f ms  offline exact %.3f ms  \
               (relative error %.4f, bound %g)\n"
              (q *. 100.0) (est *. 1e3) (x *. 1e3) rel alpha;
            (* the %g exposition rounds to 6 significant digits; allow
               that on top of the sketch bound *)
            if rel > alpha +. 1e-4 then begin
              Printf.printf "FAIL: p%g disagrees beyond the sketch bound\n"
                (q *. 100.0);
              failed := true
            end)
      [ 0.5; 0.99 ];
  if !failed || !errors > 0 then exit 1
  else
    Printf.printf
      "gate: daemon windowed quantiles within alpha=%g of offline exact — \
       ok\n"
      alpha

let all_experiments =
  [
    ("validate", run_validate);
    ("table1", run_table1);
    ("table2", run_table2);
    ("table3", run_table3);
    ("fig7a", run_fig7a);
    ("fig7b", run_fig7b);
    ("fig8", run_fig8);
    ("fig9", run_fig9);
    ("marshal-ablation", run_marshal_ablation);
    ("optimize", run_optimize);
    ("multidev", run_multidev);
    ("overlap", run_overlap);
    ("glue", run_glue);
    ("service", run_service);
    ("server", run_server);
    ("parallel", run_parallel);
    ("trace", run_trace);
    ("compiler", run_compiler_benches);
    ("runtime", run_runtime_benches);
  ]

(* ------------------------------------------------------------------ *)
(* Machine-readable perf results (--json / --baseline)                 *)
(* ------------------------------------------------------------------ *)

let usage () =
  Printf.printf
    "usage: bench/main.exe [FLAGS] [EXPERIMENT..]\n\n\
     Experiments (default: all of them):\n\
    \  %s\n\n\
     Flags:\n\
    \  --json FILE      collect per-benchmark per-device perf results\n\
    \                   (modelled time, speedup vs the JVM baseline, headline\n\
    \                   simulated hardware counters) and write them to FILE as\n\
    \                   versioned JSON (schema %s v%d)\n\
    \  --baseline FILE  diff the current collection against a previous --json\n\
    \                   run; exits 1 if any benchmark regressed more than 10%%\n\
    \  --quick          use the test-scale programs and inputs, so the JSON\n\
    \                   harness finishes in seconds (for CI)\n\
    \  --seed N         seed for the deterministic input builders (default 1)\n\
    \  --fuzz N         drive N zipf-weighted generated-program requests\n\
    \                   (lime.fuzz corpus, seeded by --seed) against an\n\
    \                   in-process daemon; reports cache hit rate and p50/p99\n\
    \  --workload NAME  restrict registry-driven experiments to NAME (repeat\n\
    \                   for several); unknown names list what is available\n\
    \  --help           this text\n"
    (String.concat " " (List.map fst all_experiments))
    Benchjson.schema_name Benchjson.schema_version

type opts = {
  mutable o_json : string option;
  mutable o_baseline : string option;
  mutable o_quick : bool;
  mutable o_seed : int;
  mutable o_names : string list;
  mutable o_fuzz : int option;
  mutable o_workloads : string list;
}

let parse_args () =
  let o =
    {
      o_json = None;
      o_baseline = None;
      o_quick = false;
      o_seed = 1;
      o_names = [];
      o_fuzz = None;
      o_workloads = [];
    }
  in
  let rec go = function
    | [] -> ()
    | "--help" :: _ | "-help" :: _ ->
        usage ();
        exit 0
    | "--json" :: file :: rest ->
        o.o_json <- Some file;
        go rest
    | "--baseline" :: file :: rest ->
        o.o_baseline <- Some file;
        go rest
    | "--quick" :: rest ->
        o.o_quick <- true;
        go rest
    | "--seed" :: n :: rest -> (
        match int_of_string_opt n with
        | Some seed ->
            o.o_seed <- seed;
            go rest
        | None ->
            Printf.eprintf "bad --seed %s: expected an integer\n" n;
            exit 2)
    | "--fuzz" :: n :: rest -> (
        match int_of_string_opt n with
        | Some count when count > 0 ->
            o.o_fuzz <- Some count;
            go rest
        | _ ->
            Printf.eprintf "bad --fuzz %s: expected a positive integer\n" n;
            exit 2)
    | "--workload" :: name :: rest ->
        o.o_workloads <- o.o_workloads @ [ name ];
        go rest
    | ("--json" | "--baseline" | "--seed" | "--fuzz" | "--workload") :: [] ->
        Printf.eprintf "missing argument (see --help)\n";
        exit 2
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        Printf.eprintf "unknown flag %s (see --help)\n" arg;
        exit 2
    | name :: rest ->
        o.o_names <- o.o_names @ [ name ];
        go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  o

let run_perf (o : opts) =
  let name =
    match o.o_json with
    | Some file ->
        let base = Filename.remove_extension (Filename.basename file) in
        if String.length base > 6 && String.sub base 0 6 = "BENCH_" then
          String.sub base 6 (String.length base - 6)
        else base
    | None -> "bench"
  in
  section "Perf collection — benchmark x device, modelled";
  Printf.printf "scale: %s, seed %d\n"
    (if o.o_quick then "quick (test-size inputs)" else "paper")
    o.o_seed;
  let current =
    Benchjson.collect ~quick:o.o_quick ~seed:o.o_seed ~multidev:true ~name ()
  in
  Printf.printf "collected %d entries (%d benchmarks x %d devices + %d multi-device)\n"
    (List.length current.Benchjson.r_entries)
    (List.length Lime_benchmarks.Registry.workloads)
    (List.length Lime_benchmarks.Benchjson.devices)
    (List.length
       (List.filter
          (fun (e : Benchjson.entry) -> e.Benchjson.e_device = "multi-device")
          current.Benchjson.r_entries));
  (match o.o_json with
  | None -> ()
  | Some file ->
      Benchjson.write_file file current;
      Printf.printf "wrote %s\n" file);
  match o.o_baseline with
  | None -> ()
  | Some file -> (
      match Benchjson.read_file file with
      | Error msg ->
          Printf.eprintf "cannot read --baseline %s: %s\n" file msg;
          exit 2
      | Ok baseline ->
          let regs = Benchjson.diff ~baseline ~current () in
          if regs = [] then
            Printf.printf "baseline %s: %d entries compared, no regressions\n"
              file
              (List.length baseline.Benchjson.r_entries)
          else begin
            Printf.printf "baseline %s: %d regression(s):\n" file
              (List.length regs);
            List.iter
              (fun r ->
                Printf.printf "  %s\n" (Benchjson.render_regression r))
              regs;
            exit 1
          end)

let () =
  let o = parse_args () in
  quick_mode := o.o_quick;
  (match o.o_workloads with
  | [] -> ()
  | names ->
      workload_filter :=
        List.map
          (fun n ->
            match Lime_benchmarks.Registry.find_or_err n with
            | Ok b -> b
            | Error msg ->
                prerr_endline msg;
                exit 2)
          names);
  (match o.o_fuzz with
  | Some count -> run_fuzz_traffic ~count ~seed:o.o_seed ()
  | None -> ());
  let perf_mode = o.o_json <> None || o.o_baseline <> None in
  let requested =
    match o.o_names with
    | [] when perf_mode || o.o_fuzz <> None -> []
    | [] -> List.map fst all_experiments
    | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name all_experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %s; available: %s\n" name
            (String.concat ", " (List.map fst all_experiments));
          exit 1)
    requested;
  if perf_mode then run_perf o
