(* limefuzz — standalone driver for the lime.fuzz differential oracle.

   Generates random well-typed Lime task graphs and checks every one
   against the three-way oracle (reference interpreter vs engine on all
   devices vs OpenCL well-formedness, plus random rewrite-schedule
   replays).  Any disagreement is shrunk to a minimal program and
   printed as a loadable .lime file.  [--selftest] perturbs the
   reference value on purpose and demands the oracle catch it — the
   harness-has-teeth check ci.sh runs on every build. *)

module Gen = Lime_fuzz.Gen
module Oracle = Lime_fuzz.Oracle

type opts = {
  mutable count : int;
  mutable seed : int;
  mutable schedules : int;
  mutable selftest : bool;
  mutable out : string option;
}

let usage () =
  print_string
    "usage: limefuzz [FLAGS]\n\n\
     Fuzz the compiler: generated Lime task graphs through the three-way\n\
     differential oracle (interpreter / engine on every device / OpenCL\n\
     well-formedness) with random rewrite-schedule replays.\n\n\
     Flags:\n\
    \  --count N      programs to generate (default 200)\n\
    \  --seed S       generation seed; failures print it for replay (default 42)\n\
    \  --schedules K  random rewrite sequences replayed per worker kernel\n\
    \                 (default 2; 0 disables schedule fuzzing)\n\
    \  --out FILE     also write a shrunk counterexample as a loadable .lime\n\
    \  --selftest     perturb the reference on purpose and require the oracle\n\
    \                 to catch it with a shrunk counterexample (exit 0 = teeth)\n\
    \  --help         this text\n"

let parse_args () =
  let o =
    { count = 200; seed = 42; schedules = 2; selftest = false; out = None }
  in
  let int_arg name v k =
    match int_of_string_opt v with
    | Some n -> k n
    | None ->
        Printf.eprintf "bad %s %s: expected an integer\n" name v;
        exit 2
  in
  let rec go = function
    | [] -> ()
    | "--help" :: _ | "-help" :: _ ->
        usage ();
        exit 0
    | "--count" :: v :: rest ->
        int_arg "--count" v (fun n -> o.count <- n);
        go rest
    | "--seed" :: v :: rest ->
        int_arg "--seed" v (fun n -> o.seed <- n);
        go rest
    | "--schedules" :: v :: rest ->
        int_arg "--schedules" v (fun n -> o.schedules <- n);
        go rest
    | "--out" :: f :: rest ->
        o.out <- Some f;
        go rest
    | "--selftest" :: rest ->
        o.selftest <- true;
        go rest
    | ("--count" | "--seed" | "--schedules" | "--out") :: [] ->
        Printf.eprintf "missing argument (see --help)\n";
        exit 2
    | arg :: _ ->
        Printf.eprintf "unknown argument %s (see --help)\n" arg;
        exit 2
  in
  go (List.tl (Array.to_list Sys.argv));
  o

(* Run [count] programs through the oracle under QCheck, so a failing
   program is shrunk before being reported. *)
let check_cell (o : opts) ~name
    (check : Gen.prog -> (unit, Oracle.disagreement) result) =
  let cell =
    QCheck.Test.make_cell ~count:o.count ~name Gen.arbitrary (fun p ->
        Result.is_ok (check p))
  in
  let rand = Random.State.make [| o.seed |] in
  QCheck.TestResult.get_state (QCheck.Test.check_cell ~rand cell)

let report_counterexample (o : opts)
    (check : Gen.prog -> (unit, Oracle.disagreement) result)
    (inst : Gen.prog QCheck.TestResult.counter_ex) =
  let p = inst.QCheck.TestResult.instance in
  let disagreement =
    match check p with Error d -> Some d | Ok () -> None
  in
  Printf.eprintf "limefuzz: disagreement at seed %d (shrunk %d steps):\n%s\n"
    o.seed inst.QCheck.TestResult.shrink_steps
    (Oracle.counterexample ?disagreement ~seed:o.seed p);
  match o.out with
  | None -> ()
  | Some path ->
      Oracle.save ?disagreement ~seed:o.seed ~path p;
      Printf.eprintf "limefuzz: counterexample written to %s\n" path

let run_fuzz (o : opts) : int =
  let check p = Oracle.check ~schedules:o.schedules ~sched_seed:o.seed p in
  let t0 = Unix.gettimeofday () in
  let state = check_cell o ~name:"lime.fuzz three-way oracle" check in
  let dt = Unix.gettimeofday () -. t0 in
  match state with
  | QCheck.TestResult.Success ->
      Printf.printf
        "limefuzz: %d generated programs, 0 disagreements (seed %d, %d \
         schedule replays per kernel, %.1fs)\n"
        o.count o.seed o.schedules dt;
      0
  | QCheck.TestResult.Failed { instances = inst :: _ } ->
      report_counterexample o check inst;
      1
  | QCheck.TestResult.Failed { instances = [] }
  | QCheck.TestResult.Failed_other _ ->
      Printf.eprintf "limefuzz: failed without a counterexample (seed %d)\n"
        o.seed;
      1
  | QCheck.TestResult.Error { instance; exn; _ } ->
      Printf.eprintf "limefuzz: oracle raised %s (seed %d)\n"
        (Printexc.to_string exn) o.seed;
      report_counterexample o check instance;
      1

(* The harness-has-teeth check: with the reference deliberately nudged,
   a healthy oracle must fail and shrink.  Success here means exit 0. *)
let run_selftest (o : opts) : int =
  let check p =
    Oracle.check ~schedules:0 ~perturb_reference:Oracle.nudge p
  in
  let o = { o with count = min o.count 25 } in
  match check_cell o ~name:"lime.fuzz oracle selftest (nudged reference)" check with
  | QCheck.TestResult.Failed { instances = inst :: _ } ->
      let p = inst.QCheck.TestResult.instance in
      Printf.printf
        "limefuzz: selftest ok — nudged reference caught (layer %s, shrunk \
         %d steps, %d-line program)\n"
        (match check p with
        | Error d -> d.Oracle.d_layer
        | Ok () -> "?")
        inst.QCheck.TestResult.shrink_steps
        (List.length (String.split_on_char '\n' (Gen.to_source p)));
      0
  | QCheck.TestResult.Success ->
      Printf.eprintf
        "limefuzz: selftest FAILED — the oracle accepted a perturbed \
         reference; the harness has no teeth\n";
      1
  | _ ->
      Printf.eprintf "limefuzz: selftest errored unexpectedly\n";
      1

let () =
  let o = parse_args () in
  exit (if o.selftest then run_selftest o else run_fuzz o)
