(** [limec] — the Lime-for-GPUs command-line compiler.

    Compiles a Lime source file, offloads the requested filter worker, and
    prints any of: the parsed program, the typed summary, the mid-level IR,
    the memory-placement decisions, the generated OpenCL kernel, the host
    glue, or a device-time estimate on one of the Table 2 platforms.

    Several source files (or a --batch manifest) compile as one batch
    through the parallel compile service; --jobs picks the parallelism.

    --daemon turns the process into limed, a resident compile daemon on a
    Unix-domain socket; --connect compiles through a running daemon so
    repeated invocations share one warm cache (see doc/SERVER.md).

    Examples:

      limec nbody.lime --worker NBody.computeForces --emit-opencl
      limec nbody.lime --worker NBody.computeForces --config local+pad+vec \
            --placements
      limec nbody.lime --worker NBody.computeForces --estimate gtx580 \
            --shape particles=4096x4
      limec matmul.lime --worker MatMul.multiply --optimize beam \
            --device gtx8800 --shape packed=1024x32 --explain
      limec a.lime b.lime c.lime --worker Filter.run --jobs 4
      limec --batch programs.manifest --jobs 4
      limec --daemon /tmp/limed.sock --jobs 4 --cache-dir ~/.cache/lime &
      limec --connect /tmp/limed.sock nbody.lime -w NBody.computeForces
*)

module Memopt = Lime_gpu.Memopt
module Pipeline = Lime_gpu.Pipeline
module Service = Lime_service.Service
module Metrics = Lime_service.Metrics
module Trace = Lime_service.Trace
module Slo = Lime_service.Slo
module Server = Lime_server.Server
module Client = Lime_server.Client
module Wire = Lime_server.Wire
module Rewrite = Lime_rewrite.Rewrite
module Search = Lime_rewrite.Search
module SPlacement = Lime_sched.Placement
module SSearch = Lime_sched.Search
module SExec = Lime_sched.Exec

(* one canonical name table, shared with the daemon's wire protocol *)
let configs = Server.configs

let devices =
  [
    ("gtx8800", Gpusim.Device.gtx8800);
    ("gtx580", Gpusim.Device.gtx580);
    ("hd5970", Gpusim.Device.hd5970);
    ("corei7", Gpusim.Device.core_i7);
  ]

let parse_shape s =
  (* particles=4096x4 *)
  let fail msg =
    Printf.eprintf "bad --shape %s: %s (expected NAME=DIMxDIM..., e.g. particles=4096x4)\n" s msg;
    exit 2
  in
  match String.split_on_char '=' s with
  | [ name; dims ] when name <> "" && dims <> "" ->
      let parse_dim tok =
        match int_of_string_opt tok with
        | Some n when n > 0 -> n
        | Some n -> fail (Printf.sprintf "dimension %d must be positive" n)
        | None -> fail (Printf.sprintf "%S is not an integer dimension" tok)
      in
      let shape =
        String.split_on_char 'x' dims |> List.map parse_dim |> Array.of_list
      in
      (name, shape)
  | _ -> fail "missing NAME= or DIMS"

(* the Table 2 platform roster, one row per simulated device — what
   --estimate/--sweep/--device/--multi-device accept *)
let print_devices () =
  Printf.printf "%-8s %-28s %4s %6s %6s %9s %6s %8s %6s %6s %6s\n" "name"
    "model" "SMs" "lanes" "clock" "PCIe" "const" "local" "L1" "L2" "L3";
  List.iter
    (fun (short, d) ->
      Printf.printf "%-8s %-28s %4d %6d %5.2fG %7.1fGB/s %6s %8s %6s %6s %6s\n"
        short d.Gpusim.Device.name d.Gpusim.Device.sms
        d.Gpusim.Device.fp32_lanes d.Gpusim.Device.clock_ghz
        d.Gpusim.Device.pcie_gbs d.Gpusim.Device.info_const_mem
        d.Gpusim.Device.info_local_mem d.Gpusim.Device.info_l1
        d.Gpusim.Device.info_l2 d.Gpusim.Device.info_l3)
    devices

let lookup_device flag dev_name =
  match List.assoc_opt dev_name devices with
  | Some d -> d
  | None ->
      Printf.eprintf "unknown device %s for %s; available: %s\n" dev_name flag
        (String.concat ", " (List.map fst devices));
      exit 2

let lookup_config config_name =
  match List.assoc_opt config_name configs with
  | Some c -> c
  | None ->
      Printf.eprintf "unknown config %s; available: %s\n" config_name
        (String.concat ", " (List.map fst configs));
      exit 2

let check_cache_dir cache_dir =
  match cache_dir with
  | Some d when Sys.file_exists d && not (Sys.is_directory d) ->
      Printf.eprintf "bad --cache-dir %s: not a directory\n" d;
      exit 2
  | _ -> ()

let read_source file =
  try
    if file = "-" then In_channel.input_all In_channel.stdin
    else In_channel.with_open_text file In_channel.input_all
  with Sys_error msg ->
    Printf.eprintf "cannot read %s: %s\n" file msg;
    exit 2

let setup_observers ~stats ~trace_out ~trace_summary =
  (* metrics and tracing compose: both observers are keyed, so enabling
     one never clobbers the other *)
  if stats then Service.instrument ();
  if trace_out <> None || trace_summary then begin
    Trace.set_enabled Trace.default true;
    Trace.install ()
  end

let finish_observers svc ~stats ~trace_out ~trace_summary =
  if stats then begin
    print_endline "--- metrics ---";
    print_string (Service.expose svc)
  end;
  if trace_summary then begin
    print_endline "--- trace summary ---";
    print_string (Trace.summary Trace.default)
  end;
  match trace_out with
  | None -> ()
  | Some f ->
      Trace.write_chrome Trace.default f;
      Printf.eprintf "trace: wrote %s (%d spans)\n" f
        (List.length (Trace.spans Trace.default))

let run_single file worker config_name jobs cache_capacity dump_ast dump_ir
    placements emit_opencl emit_glue estimate sweep counters shapes cache_dir
    stats run_target run_args trace_out profile trace_summary optimize
    opt_device beam_width beam_depth multi_device explain =
  let source = read_source file in
  let config = lookup_config config_name in
  check_cache_dir cache_dir;
  setup_observers ~stats ~trace_out ~trace_summary;
  let svc =
    Service.create ?cache_dir
      ~capacity:(Option.value cache_capacity ~default:16)
      ~jobs ()
  in
  match
    Lime_support.Diag.protect (fun () ->
        Service.compile_ex svc ~config ~name:file ~worker source)
  with
  | Error d ->
      Printf.eprintf "%s\n" (Lime_support.Diag.to_string d);
      exit 1
  | Ok (c, origin) ->
      if cache_dir <> None then
        Printf.printf "kernel cache: %s (%s)\n"
          (match origin with Service.Compiled -> "miss" | _ -> "hit")
          (Service.origin_name origin);
      let kernel = c.Pipeline.cp_kernel in
      if dump_ast then
        print_endline
          (Lime_frontend.Ast.program_to_string
             (Lime_frontend.Parser.program_of_string ~name:file source));
      if dump_ir then
        List.iter
          (fun s -> print_endline (Lime_ir.Ir.stmt_str s))
          kernel.Lime_gpu.Kernel.k_body;
      (* with --optimize, the placements/OpenCL printed are the optimized
         artifact's — the optimize block below owns them *)
      if placements && optimize = None then
        print_endline (Memopt.describe c.Pipeline.cp_decisions);
      if emit_opencl && optimize = None then
        print_string c.Pipeline.cp_opencl;
      if emit_glue then
        print_string (Lime_gpu.Hostgen.generate kernel);
      (match optimize with
      | None -> ()
      | Some mode ->
          let d = lookup_device "--optimize" opt_device in
          let opt_shapes = List.map parse_shape shapes in
          if opt_shapes = [] then begin
            Printf.eprintf "--optimize requires at least one --shape\n";
            exit 2
          end;
          let digest =
            Service.request_digest ~device:opt_device ~config ~worker source
          in
          let optimized =
            match mode with
            | `Fig8 -> (
                (* the paper's sweep: winner config, placements and OpenCL
                   byte-identical to --sweep + --config <winner> *)
                let entries, status =
                  Service.sweep svc d ~device_key:opt_device ~digest kernel
                    ~shapes:opt_shapes ~scalars:[]
                in
                if cache_dir <> None then
                  Printf.printf "tunestore: %s\n"
                    (match status with
                    | `Hit _ -> "hit — re-timed stored best only"
                    | `Miss -> "miss — swept all configurations");
                match entries with
                | [] ->
                    Printf.eprintf "--optimize fig8: empty sweep\n";
                    exit 1
                | best :: _ ->
                    Printf.printf
                      "optimize fig8 on %s: winner %s (%.3e s modeled)\n"
                      d.Gpusim.Device.name best.Gpusim.Autotune.at_name
                      best.Gpusim.Autotune.at_time_s;
                    if explain then
                      print_endline (Gpusim.Autotune.describe entries);
                    Pipeline.reoptimize c best.Gpusim.Autotune.at_config)
            | `Beam ->
                let best, how =
                  Service.beam_schedule svc d ~device_key:opt_device ~digest
                    ~width:beam_width ~depth:beam_depth kernel
                    ~shapes:opt_shapes ~scalars:[]
                in
                if cache_dir <> None then
                  Printf.printf "tunestore: %s\n"
                    (match how with
                    | `Replayed -> "hit — replayed stored schedule"
                    | `Searched _ -> "miss — searched, stored best schedule");
                Printf.printf "optimize beam on %s: %s (%.3e s modeled, %s)\n"
                  d.Gpusim.Device.name
                  (Search.seq_str best.Search.sc_sequence)
                  best.Search.sc_time_s
                  (match how with
                  | `Replayed -> "replayed"
                  | `Searched o ->
                      Printf.sprintf "%d evaluations" o.Search.so_evals);
                (match how with
                | `Searched o when explain -> print_string (Search.explain o)
                | _ -> ());
                Pipeline.reschedule c
                  ~schedule:best.Search.sc_sequence
                  best.Search.sc_state.Rewrite.st_kernel
                  best.Search.sc_state.Rewrite.st_config
          in
          print_endline (Memopt.describe optimized.Pipeline.cp_decisions);
          if emit_opencl then print_string optimized.Pipeline.cp_opencl);
      (match sweep with
      | None -> ()
      | Some dev_name ->
          let d = lookup_device "--sweep" dev_name in
          let shapes = List.map parse_shape shapes in
          if shapes = [] then begin
            Printf.eprintf "--sweep requires at least one --shape\n";
            exit 2
          end;
          Printf.printf "memory-mapping exploration on %s (fastest first):\n"
            d.Gpusim.Device.name;
          let digest =
            Service.request_digest ~device:dev_name ~config ~worker source
          in
          let entries, status =
            Service.sweep svc d ~device_key:dev_name ~digest kernel ~shapes
              ~scalars:[]
          in
          if cache_dir <> None then
            (match status with
            | `Hit r ->
                Printf.printf
                  "tunestore: hit — re-timed stored best %s only\n"
                  r.Lime_service.Tunestore.tr_config_name
            | `Miss ->
                Printf.printf
                  "tunestore: miss — swept %d configurations, stored best\n"
                  (List.length entries));
          print_endline (Gpusim.Autotune.describe entries);
          (* why the winner wins: its headline counters, from the store on
             a hit, recomputed on a miss *)
          let headline =
            match status with
            | `Hit { Lime_service.Tunestore.tr_headline = Some h; _ } ->
                Some
                  ( h.Lime_service.Tunestore.th_occupancy,
                    h.Lime_service.Tunestore.th_bank_replays,
                    h.Lime_service.Tunestore.th_roofline )
            | _ -> (
                match entries with
                | best :: _ ->
                    let c =
                      Gpusim.Autotune.counters_for d
                        kernel best.Gpusim.Autotune.at_config ~shapes
                        ~scalars:[]
                    in
                    Some
                      ( c.Gpusim.Counters.ct_occupancy,
                        c.Gpusim.Counters.ct_bank_replays,
                        Gpusim.Counters.roofline_name
                          (Gpusim.Counters.classify c) )
                | [] -> None)
          in
          match headline with
          | Some (occ, br, rl) ->
              Printf.printf
                "winner: occupancy %.2f, bank-conflict replays %g, %s\n" occ
                br rl
          | None -> ());
      (match estimate with
      | None -> ()
      | Some dev_name ->
          let d = lookup_device "--estimate" dev_name in
          let shapes = List.map parse_shape shapes in
          if shapes = [] then begin
            Printf.eprintf
              "--estimate requires at least one --shape name=DIMS\n";
            exit 2
          end;
          let prof =
            Gpusim.Profile.profile kernel c.Pipeline.cp_decisions ~shapes
              ~scalars:[]
          in
          let bindings =
            List.filter_map
              (fun (name, shape) ->
                match List.assoc_opt name kernel.Lime_gpu.Kernel.k_params with
                | Some (Lime_ir.Ir.TArr aty) ->
                    Some
                      (Gpusim.Model.binding_of_shape ~name
                         ~elem:aty.Lime_ir.Ir.elem ~shape
                         (Memopt.placement_for c.Pipeline.cp_decisions name))
                | _ -> None)
              shapes
          in
          let bd = Gpusim.Model.kernel_time d prof bindings in
          Format.printf "device: %s@." d.Gpusim.Device.name;
          Format.printf "profile: %s@." (Gpusim.Profile.to_string prof);
          Format.printf "estimate: %a@." Gpusim.Model.pp_breakdown bd);
      (match counters with
      | None -> ()
      | Some dev_name ->
          let d = lookup_device "--counters" dev_name in
          let shapes = List.map parse_shape shapes in
          if shapes = [] then begin
            Printf.eprintf
              "--counters requires at least one --shape name=DIMS\n";
            exit 2
          end;
          let prof =
            Gpusim.Profile.profile kernel c.Pipeline.cp_decisions ~shapes
              ~scalars:[]
          in
          let bindings =
            List.filter_map
              (fun (name, shape) ->
                match List.assoc_opt name kernel.Lime_gpu.Kernel.k_params with
                | Some (Lime_ir.Ir.TArr aty) ->
                    Some
                      (Gpusim.Model.binding_of_shape ~name
                         ~elem:aty.Lime_ir.Ir.elem ~shape
                         (Memopt.placement_for c.Pipeline.cp_decisions name))
                | _ -> None)
              shapes
          in
          let _, ct = Gpusim.Model.kernel_time_ex d prof bindings in
          print_string (Gpusim.Counters.report ct));
      if profile then begin
        let shapes = List.map parse_shape shapes in
        let prof =
          Gpusim.Profile.profile kernel c.Pipeline.cp_decisions ~shapes
            ~scalars:[]
        in
        print_string (Gpusim.Profile.report prof)
      end;
      (match run_target with
      | None -> ()
      | Some target ->
          let cls, meth =
            match String.split_on_char '.' target with
            | [ cls; meth ] -> (cls, meth)
            | _ ->
                Printf.eprintf "bad --run %s (expected CLASS.METHOD)\n" target;
                exit 2
          in
          let args =
            List.map (fun i -> Lime_ir.Value.VInt i) run_args
          in
          let ecfg = Lime_runtime.Engine.default_config in
          let spec_of_engine placed =
            SPlacement.to_spec
              (List.map
                 (fun (task, d) ->
                   ( task,
                     match d with
                     | None -> SPlacement.Host
                     | Some d -> SPlacement.On d ))
                 placed)
          in
          let report =
            match multi_device with
            | None ->
                let _, report =
                  try
                    Lime_runtime.Engine.run_program ecfg c.Pipeline.cp_module
                      ~cls ~meth args
                  with Lime_ir.Interp.Runtime_error msg ->
                    Printf.eprintf "cannot run %s: %s\n" target msg;
                    exit 1
                in
                report
            | Some mode ->
                (* parse the mode before the program runs so a bad SPEC is
                   a usage error, not a mid-run failure *)
                let mode =
                  if mode = "auto" then `Auto
                  else
                    match SPlacement.of_spec mode with
                    | Ok p -> `Spec p
                    | Error msg ->
                        Printf.eprintf "bad --multi-device: %s\n" msg;
                        exit 2
                in
                let digest =
                  Service.request_digest ~device:"multi" ~config ~worker
                    source
                in
                let explain_replay (c : SSearch.candidate) stages ~firings =
                  if explain then begin
                    let singles, best_single =
                      SSearch.singles ~firings stages
                    in
                    Printf.printf "placement replay: %s\n%s"
                      (SPlacement.to_spec c.SSearch.pc_placement)
                      (SSearch.explain_table ~singles ~best_single c)
                  end
                in
                let choose stages ~firings =
                  match mode with
                  | `Auto when cache_dir <> None ->
                      let best, how =
                        Service.sched_placement svc ~digest ~firings stages
                      in
                      Printf.printf "tunestore: %s\n"
                        (match how with
                        | `Replayed -> "hit — replayed stored placement"
                        | `Searched o ->
                            Printf.sprintf
                              "miss — searched %d placements, stored best"
                              o.SSearch.po_evals);
                      (match how with
                      | `Searched o when explain ->
                          print_string (SSearch.explain o)
                      | `Replayed -> explain_replay best stages ~firings
                      | _ -> ());
                      best.SSearch.pc_placement
                  | `Auto ->
                      let o = SSearch.search ~firings stages in
                      if explain then print_string (SSearch.explain o);
                      o.SSearch.po_best.SSearch.pc_placement
                  | `Spec p -> (
                      match SSearch.replay ~firings stages p with
                      | Error msg ->
                          Printf.eprintf "bad --multi-device: %s\n" msg;
                          exit 2
                      | Ok c ->
                          explain_replay c stages ~firings;
                          c.SSearch.pc_placement)
                in
                let _, report, decisions =
                  try
                    SExec.run_program ecfg ~choose c.Pipeline.cp_module ~cls
                      ~meth args
                  with Lime_ir.Interp.Runtime_error msg ->
                    Printf.eprintf "cannot run %s: %s\n" target msg;
                    exit 1
                in
                List.iter
                  (fun dc ->
                    Printf.printf "placement %s (%d firings)\n"
                      (SPlacement.to_spec dc.SExec.dc_placement)
                      dc.SExec.dc_firings)
                  decisions;
                report
          in
          Printf.printf "run %s: %d firings (%d offloaded, %d host tasks)\n"
            target report.Lime_runtime.Engine.firings
            (List.length report.Lime_runtime.Engine.offloaded_tasks)
            (List.length report.Lime_runtime.Engine.host_tasks);
          if (stats || multi_device <> None)
             && report.Lime_runtime.Engine.placements <> []
          then
            Printf.printf "placements: %s\n"
              (spec_of_engine report.Lime_runtime.Engine.placements);
          if multi_device <> None then
            Printf.printf "overlapped: %.3e s (serial %.3e s)\n"
              report.Lime_runtime.Engine.overlapped_s
              (Lime_runtime.Comm.total report.Lime_runtime.Engine.phases);
          Format.printf "phases: %a@." Lime_runtime.Comm.pp
            report.Lime_runtime.Engine.phases);
      if
        (not dump_ast) && (not dump_ir) && (not placements)
        && (not emit_opencl) && (not emit_glue) && (not profile)
        && estimate = None && sweep = None && counters = None
        && run_target = None && optimize = None
      then begin
        Printf.printf "compiled %s: kernel %s (%s)\n" file
          kernel.Lime_gpu.Kernel.k_name
          (if kernel.Lime_gpu.Kernel.k_parallel then "data-parallel"
           else "sequential");
        print_endline (Memopt.describe c.Pipeline.cp_decisions)
      end;
      finish_observers svc ~stats ~trace_out ~trace_summary;
      Service.shutdown svc

(* ------------------------------------------------------------------ *)
(* Batch mode                                                          *)
(* ------------------------------------------------------------------ *)

type batch_entry = {
  bt_file : string;
  bt_worker : string;
  bt_config_name : string;
}

(* Manifest format: one "FILE WORKER [CONFIG]" entry per line; '#' starts
   a comment, blank lines are skipped.  Documented in doc/SERVICE.md.
   Every parse error names the offending manifest line as file:line. *)
let parse_manifest file =
  let text =
    try In_channel.with_open_text file In_channel.input_all
    with Sys_error msg ->
      Printf.eprintf "cannot read --batch %s: %s\n" file msg;
      exit 2
  in
  let fail_line i fmt =
    Printf.eprintf "bad --batch %s:%d: " file (i + 1);
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "%s\n" msg;
        exit 2)
      fmt
  in
  let check_config i name =
    if not (List.mem_assoc name configs) then
      fail_line i "unknown config %s; available: %s" name
        (String.concat ", " (List.map fst configs))
  in
  let entries = ref [] in
  List.iteri
    (fun i line ->
      let payload =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      let words =
        String.map (fun c -> if c = '\t' then ' ' else c) payload
        |> String.split_on_char ' '
        |> List.filter (fun w -> w <> "")
      in
      match words with
      | [] -> ()
      | [ bt_file; bt_worker ] ->
          entries := { bt_file; bt_worker; bt_config_name = "all" } :: !entries
      | [ bt_file; bt_worker; bt_config_name ] ->
          check_config i bt_config_name;
          entries := { bt_file; bt_worker; bt_config_name } :: !entries
      | _ ->
          fail_line i "expected FILE WORKER [CONFIG], got %S"
            (String.trim line))
    (String.split_on_char '\n' text);
  List.rev !entries

let run_batch entries jobs cache_capacity cache_dir stats trace_out
    trace_summary =
  check_cache_dir cache_dir;
  setup_observers ~stats ~trace_out ~trace_summary;
  let svc =
    Service.create ?cache_dir
      ~capacity:
        (Option.value cache_capacity
           ~default:(max 16 (List.length entries)))
      ~jobs ()
  in
  let reqs =
    List.map
      (fun e ->
        Service.request
          ~config:(lookup_config e.bt_config_name)
          ~name:e.bt_file ~worker:e.bt_worker (read_source e.bt_file))
      entries
  in
  let results = Service.compile_many svc reqs in
  let failed = ref 0 in
  List.iter2
    (fun e r ->
      match r with
      | Ok c ->
          Printf.printf "compiled %s (%s): kernel %s\n" e.bt_file e.bt_worker
            c.Pipeline.cp_kernel.Lime_gpu.Kernel.k_name
      | Error d ->
          incr failed;
          Printf.eprintf "%s: %s\n" e.bt_file (Lime_support.Diag.to_string d))
    entries results;
  let s = Service.stats svc in
  Printf.printf "batch: %d compiled, %d failed (jobs %d, %d cache hits)\n"
    (List.length entries - !failed)
    !failed (Service.jobs svc) s.Lime_service.Kcache.hits;
  finish_observers svc ~stats ~trace_out ~trace_summary;
  Service.shutdown svc;
  if !failed > 0 then exit 1

(* ------------------------------------------------------------------ *)
(* Daemon and client modes                                             *)
(* ------------------------------------------------------------------ *)

let run_daemon socket jobs cache_capacity max_queue idle_timeout cache_dir
    http_port access_log drain_grace flight_capacity flight_dump slo_specs =
  check_cache_dir cache_dir;
  if max_queue < 1 then begin
    Printf.eprintf "bad --max-queue %d: must be at least 1\n" max_queue;
    exit 2
  end;
  if idle_timeout <= 0.0 then begin
    Printf.eprintf "bad --idle-timeout %g: must be positive seconds\n"
      idle_timeout;
    exit 2
  end;
  (match http_port with
  | Some p when p < 0 || p > 0xFFFF ->
      Printf.eprintf "bad --http %d: must be a port number (0 = ephemeral)\n" p;
      exit 2
  | _ -> ());
  if drain_grace < 0.0 then begin
    Printf.eprintf "bad --drain-grace %g: must not be negative\n" drain_grace;
    exit 2
  end;
  let flight_capacity = Option.value flight_capacity ~default:32 in
  if flight_capacity < 1 then begin
    Printf.eprintf
      "bad --flight-capacity %d: must retain at least 1 request per ring\n"
      flight_capacity;
    exit 2
  end;
  let slos =
    List.map
      (fun spec ->
        match Slo.parse_spec spec with
        | Ok d -> d
        | Error msg ->
            Printf.eprintf "bad --slo: %s; expected %s\n" msg Slo.spec_syntax;
            exit 2)
      slo_specs
  in
  let cfg =
    {
      Server.sc_socket = socket;
      sc_jobs = jobs;
      sc_max_inflight = max_queue;
      sc_idle_timeout_s = idle_timeout;
      sc_cache_dir = cache_dir;
      sc_cache_capacity = Option.value cache_capacity ~default:64;
      sc_http_port = http_port;
      sc_access_log = access_log;
      sc_drain_grace_s = drain_grace;
      sc_flight_capacity = flight_capacity;
      sc_flight_dump = flight_dump;
      sc_slos = slos;
    }
  in
  let server =
    try Server.create cfg
    with
    | Unix.Unix_error (e, _, _) ->
        Printf.eprintf "cannot listen on %s: %s\n" socket
          (Unix.error_message e);
        exit 1
    | Sys_error msg ->
        Printf.eprintf "limed: %s\n" msg;
        exit 1
  in
  (* SIGTERM/SIGINT request a graceful drain: finish in-flight work,
     flush every reply, remove the socket, exit 0 *)
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> Server.drain server));
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> Server.drain server));
  (* SIGQUIT asks for a flight-recorder post-mortem dump without taking
     the daemon down — the operator's "explain yourself" signal *)
  Sys.set_signal Sys.sigquit
    (Sys.Signal_handle (fun _ -> Server.request_flight_dump server));
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Printf.eprintf "limed: listening on %s (jobs %d, max in-flight %d)\n%!"
    socket jobs max_queue;
  (match Server.http_port server with
  | Some p -> Printf.eprintf "limed: http on 127.0.0.1:%d\n%!" p
  | None -> ());
  Server.run server;
  let r = Server.report server in
  Printf.eprintf
    "limed: drained — %d requests, %d completed, %d overloaded, %d \
     deadline-exceeded, %d dropped\n%!"
    r.Server.rp_requests r.Server.rp_completed r.Server.rp_rejected
    r.Server.rp_deadline r.Server.rp_dropped;
  exit 0

let connect_exit_code (e : Lime_server.Wire.server_error) =
  match e.Lime_server.Wire.er_code with
  | Lime_server.Wire.Overloaded | Lime_server.Wire.Draining -> 75
      (* EX_TEMPFAIL: retry later *)
  | Lime_server.Wire.Deadline_exceeded -> 124 (* like timeout(1) *)
  | Lime_server.Wire.Compile_error | Lime_server.Wire.Protocol_error -> 1

let run_connect socket files worker config_name deadline_ms emit_opencl
    placements stats drain_req trace_out =
  let tracer = Trace.default in
  if trace_out <> None then Trace.set_enabled tracer true;
  let cl =
    match Client.connect socket with
    | Ok cl -> cl
    | Error msg ->
        Printf.eprintf "limec: %s\n" msg;
        exit 1
  in
  let finally () = Client.close cl in
  Fun.protect ~finally (fun () ->
      if drain_req then begin
        match Client.drain cl with
        | Ok d ->
            Printf.printf "drained: %d completed while draining, %d dropped\n"
              d.Lime_server.Wire.da_completed d.Lime_server.Wire.da_dropped;
            if d.Lime_server.Wire.da_dropped > 0 then exit 1
        | Error f ->
            Printf.eprintf "limec: drain: %s\n" (Client.failure_to_string f);
            exit 1
      end
      else begin
        (match (files, worker) with
        | [], None when stats -> ()
        | [], _ when not stats ->
            Printf.eprintf
              "no input: pass a FILE to compile over --connect (or --stats \
               / --drain)\n";
            exit 2
        | [], _ -> ()
        | [ file ], Some w -> (
            ignore (lookup_config config_name);
            let source = read_source file in
            (* distributed tracing: open the client-side request span and
               propagate (trace id, parent span) in the Compile frame; the
               daemon's spans come home in the Result for grafting *)
            let trace =
              if trace_out = None then None
              else begin
                Trace.begin_span tracer ~cat:"client"
                  ~args:
                    [
                      ("file", file);
                      ("worker", w);
                      ("config", config_name);
                      ("socket", socket);
                    ]
                  "client.request";
                Some
                  {
                    Wire.tc_trace_id = Trace.trace_id tracer;
                    tc_parent_span = Trace.current_span_id tracer;
                  }
              end
            in
            let graft_base_us = Trace.now_us tracer in
            let finish_trace a =
              (match (trace, a) with
              | Some ctx, Some a when a.Wire.ar_spans <> "" -> (
                  match Trace.spans_of_wire a.Wire.ar_spans with
                  | Ok spans ->
                      ignore
                        (Trace.graft tracer ~at_us:graft_base_us
                           ~parent:ctx.Wire.tc_parent_span spans)
                  | Error msg ->
                      Printf.eprintf
                        "limec: ignoring malformed span buffer from server: \
                         %s\n"
                        msg)
              | _ -> ());
              if trace <> None then Trace.end_span tracer "client.request";
              match trace_out with
              | None -> ()
              | Some f ->
                  Trace.write_chrome tracer f;
                  Printf.eprintf "trace: wrote %s (%d spans, trace id %s)\n" f
                    (List.length (Trace.spans tracer))
                    (Trace.trace_id tracer)
            in
            match
              Client.compile cl ?deadline_ms ~config:config_name ~name:file
                ?trace ~worker:w source
            with
            | Error (Client.Server_error e) ->
                finish_trace None;
                Printf.eprintf "limec: %s\n"
                  (Client.failure_to_string (Client.Server_error e));
                exit (connect_exit_code e)
            | Error (Client.Transport _ as f) ->
                finish_trace None;
                Printf.eprintf "limec: %s\n" (Client.failure_to_string f);
                exit 1
            | Ok a ->
                finish_trace (Some a);
                (* provenance goes to stderr so stdout stays byte-identical
                   to a local compile *)
                Printf.eprintf "server cache: %s (%s)\n"
                  (if a.Lime_server.Wire.ar_origin = "compiled" then "miss"
                   else "hit")
                  a.Lime_server.Wire.ar_origin;
                if emit_opencl then
                  print_string a.Lime_server.Wire.ar_opencl;
                if placements then
                  print_endline a.Lime_server.Wire.ar_placements;
                if (not emit_opencl) && not placements then begin
                  Printf.printf "compiled %s: kernel %s (%s)\n" file
                    a.Lime_server.Wire.ar_kernel
                    (if a.Lime_server.Wire.ar_parallel then "data-parallel"
                     else "sequential");
                  print_endline a.Lime_server.Wire.ar_placements
                end)
        | [ _ ], None ->
            Printf.eprintf "missing --worker CLASS.METHOD\n";
            exit 2
        | _ ->
            Printf.eprintf "--connect compiles a single FILE per invocation\n";
            exit 2);
        if stats then begin
          match Client.stats cl with
          | Ok text ->
              print_endline "--- server metrics ---";
              print_string text
          | Error f ->
              Printf.eprintf "limec: stats: %s\n" (Client.failure_to_string f);
              exit 1
        end
      end)

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let run files worker config_name jobs batch daemon connect drain_req
    deadline_ms max_queue idle_timeout cache_capacity http_port access_log
    drain_grace flight_capacity flight_dump slo_specs dump_ast dump_ir
    placements emit_opencl emit_glue estimate
    sweep counters shapes cache_dir stats run_target run_args trace_out
    profile trace_summary optimize opt_device beam_width beam_depth
    list_devices multi_device explain =
  if list_devices then begin
    print_devices ();
    exit 0
  end;
  if multi_device <> None && run_target = None then begin
    Printf.eprintf "--multi-device needs --run CLASS.METHOD\n";
    exit 2
  end;
  if jobs < 1 then begin
    Printf.eprintf "bad --jobs %d: must be at least 1\n" jobs;
    exit 2
  end;
  (match cache_capacity with
  | Some n when n < 1 ->
      Printf.eprintf
        "bad --cache-capacity %d: must be a positive number of cached \
         kernels\n"
        n;
      exit 2
  | _ -> ());
  let require_worker () =
    match worker with
    | Some w -> w
    | None ->
        Printf.eprintf "missing --worker CLASS.METHOD\n";
        exit 2
  in
  let reject_over what flag_set =
    if flag_set then begin
      Printf.eprintf
        "%s runs on the daemon; per-artifact inspection flags (--dump-ast, \
         --dump-ir, --estimate, --sweep, --counters, --profile, --shape, \
         --run, --multi-device, --trace-summary, --emit-glue, --batch, \
         --cache-dir, --optimize, --explain) are local-only (--trace \
         additionally composes with --connect)\n"
        what;
      exit 2
    end
  in
  if beam_width < 1 then begin
    Printf.eprintf "bad --beam-width %d: must be at least 1\n" beam_width;
    exit 2
  end;
  if beam_depth < 0 then begin
    Printf.eprintf "bad --beam-depth %d: must not be negative\n" beam_depth;
    exit 2
  end;
  let reject_daemon_only () =
    if
      http_port <> None || access_log <> None || drain_grace <> None
      || flight_capacity <> None || flight_dump <> None || slo_specs <> []
    then begin
      Printf.eprintf
        "--http, --access-log, --drain-grace, --flight-capacity, \
         --flight-dump and --slo configure the daemon; they need --daemon \
         SOCK\n";
      exit 2
    end
  in
  match (daemon, connect) with
  | Some _, Some _ ->
      Printf.eprintf "--daemon and --connect are mutually exclusive\n";
      exit 2
  | Some socket, None ->
      reject_over "--daemon"
        (dump_ast || dump_ir || placements || emit_opencl || emit_glue
        || profile || trace_summary || drain_req || stats || explain
        || estimate <> None || sweep <> None || counters <> None
        || run_target <> None || shapes <> [] || trace_out <> None
        || batch <> None || files <> [] || optimize <> None
        || multi_device <> None);
      run_daemon socket jobs cache_capacity max_queue idle_timeout cache_dir
        http_port access_log
        (Option.value drain_grace ~default:0.0)
        flight_capacity flight_dump slo_specs
  | None, Some socket ->
      reject_daemon_only ();
      reject_over "--connect"
        (dump_ast || dump_ir || emit_glue || profile || trace_summary
        || explain
        || estimate <> None || sweep <> None || counters <> None
        || run_target <> None || shapes <> []
        || batch <> None || cache_dir <> None || optimize <> None
        || multi_device <> None);
      run_connect socket files worker config_name deadline_ms emit_opencl
        placements stats drain_req trace_out
  | None, None -> (
      reject_daemon_only ();
      if drain_req then begin
        Printf.eprintf "--drain needs --connect SOCK\n";
        exit 2
      end;
      if deadline_ms <> None then begin
        Printf.eprintf "--deadline-ms needs --connect SOCK\n";
        exit 2
      end;
      match (files, batch) with
      | [], None ->
          Printf.eprintf "no input: pass a FILE ('-' for stdin) or --batch\n";
          exit 2
      | [ file ], None ->
          (* the one-file invocation is the classic compiler path: every
             flag applies, output is unchanged *)
          run_single file (require_worker ()) config_name jobs cache_capacity
            dump_ast dump_ir placements emit_opencl emit_glue estimate sweep
            counters shapes cache_dir stats run_target run_args trace_out
            profile trace_summary optimize opt_device beam_width beam_depth
            multi_device explain
      | files, batch ->
          if
            dump_ast || dump_ir || placements || emit_opencl || emit_glue
            || profile || estimate <> None || sweep <> None
            || counters <> None || run_target <> None || shapes <> []
            || optimize <> None || multi_device <> None
          then begin
            Printf.eprintf
              "batch compilation only compiles; per-artifact inspection \
               flags (--dump-ast, --dump-ir, --placements, --emit-opencl, \
               --emit-glue, --estimate, --sweep, --counters, --profile, \
               --shape, --run, --multi-device, --optimize) need a single \
               FILE\n";
            exit 2
          end;
          let from_files =
            match files with
            | [] -> []
            | _ ->
                let w = require_worker () in
                List.map
                  (fun f ->
                    { bt_file = f; bt_worker = w; bt_config_name = config_name })
                  files
          in
          let from_manifest =
            match batch with Some m -> parse_manifest m | None -> []
          in
          run_batch (from_files @ from_manifest) jobs cache_capacity cache_dir
            stats trace_out trace_summary)

open Cmdliner

let files =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"FILE"
        ~doc:
          "Lime source file(s) ('-' for stdin).  One file compiles with \
           the full flag set; several compile as a batch (see --jobs).")

let worker =
  Arg.(
    value
    & opt (some string) None
    & info [ "worker"; "w" ] ~docv:"CLASS.METHOD"
        ~doc:
          "Filter worker method to offload (required unless every request \
           comes from a --batch manifest).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Compile with N-way parallelism: batches fan out across N - 1 \
           worker domains plus the caller, and --sweep times the eight \
           configurations in parallel.  --jobs 1 (the default) is exactly \
           the sequential compiler.")

let batch_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "batch" ] ~docv:"MANIFEST"
        ~doc:
          "Compile every entry of MANIFEST (one 'FILE WORKER [CONFIG]' per \
           line, '#' comments) as one batch through the compile service.")

let config_name =
  Arg.(
    value & opt string "all"
    & info [ "config"; "c" ] ~docv:"CONFIG"
        ~doc:
          "Memory configuration: global, global+vec, local, local+pad, \
           local+pad+vec, constant, constant+vec, texture, all.")

let dump_ast = Arg.(value & flag & info [ "dump-ast" ] ~doc:"Print the parsed program.")
let dump_ir = Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print the extracted kernel IR.")

let placements =
  Arg.(value & flag & info [ "placements" ] ~doc:"Print memory placements.")

let emit_opencl =
  Arg.(value & flag & info [ "emit-opencl" ] ~doc:"Print the OpenCL kernel.")

let emit_glue =
  Arg.(value & flag & info [ "emit-glue" ] ~doc:"Print the host glue C code.")

let estimate =
  Arg.(
    value
    & opt (some string) None
    & info [ "estimate" ] ~docv:"DEVICE"
        ~doc:"Estimate kernel time on a device: gtx8800, gtx580, hd5970, corei7.")

let sweep_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "sweep" ] ~docv:"DEVICE"
        ~doc:
          "Explore all eight memory configurations on a device model and \
           rank them (the paper's §4.2.1 automated exploration).")

let counters_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "counters" ] ~docv:"DEVICE"
        ~doc:
          "Print the launch's simulated hardware counters and roofline \
           classification on a device model (gtx8800, gtx580, hd5970, \
           corei7).  Requires --shape; composes with --profile, \
           --trace-summary and --stats.")

let shapes =
  Arg.(
    value & opt_all string []
    & info [ "shape" ] ~docv:"NAME=DIMS"
        ~doc:"Argument shape for --estimate, e.g. particles=4096x4.")

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Compile-service cache directory: compiled kernels are stored \
           content-addressed under DIR/kernels and --sweep results persist \
           in the DIR/tune tunestore, so repeated invocations start warm.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print the service metrics exposition (compile counters and \
           latency histograms; with --run, also the per-leg communication \
           histograms) after the requested actions.")

let run_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "run" ] ~docv:"CLASS.METHOD"
        ~doc:
          "Execute an entry point through the task-graph engine on the \
           simulated GTX 580 (pass integer arguments with --arg).")

let run_args =
  Arg.(
    value & opt_all int []
    & info [ "arg" ] ~docv:"INT"
        ~doc:"Integer argument for --run (repeatable, in order).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a span trace of everything this invocation does (compile \
           phases, cache lookups, artifact store, engine firings with their \
           per-leg communication breakdown) and write it to FILE as Chrome \
           trace-event JSON, loadable in chrome://tracing or Perfetto.")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Print the per-kernel profile report: FLOP mix and per-array \
           memory-access table (use --shape to profile concrete extents; \
           without shapes the counts are the symbolic approximation).")

let trace_summary_arg =
  Arg.(
    value & flag
    & info [ "trace-summary" ]
        ~doc:
          "Print a human-readable aggregate of the recorded spans (per-name \
           inclusive time, share, count) after the requested actions.")

let daemon_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "daemon" ] ~docv:"SOCK"
        ~doc:
          "Run as the resident compile daemon (limed) listening on the \
           Unix-domain socket SOCK.  One process owns the warm kernel \
           cache; clients compile through it with --connect.  SIGTERM \
           drains gracefully: in-flight requests finish, replies flush, \
           the socket is removed, and the daemon exits 0.")

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"SOCK"
        ~doc:
          "Compile through the daemon listening on SOCK instead of \
           locally.  Output on stdout is byte-identical to a local \
           compile; cache provenance is reported on stderr.")

let drain_arg =
  Arg.(
    value & flag
    & info [ "drain" ]
        ~doc:
          "With --connect: ask the daemon to drain gracefully and report \
           how many in-flight requests completed or were dropped.")

let deadline_ms_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "With --connect: give the request a deadline of MS milliseconds \
           from admission; the daemon abandons work it cannot answer in \
           time and replies deadline_exceeded (exit 124).")

let max_queue_arg =
  Arg.(
    value & opt int 64
    & info [ "max-queue" ] ~docv:"N"
        ~doc:
          "With --daemon: admission bound — at most N requests queued or \
           running; the next one is refused with an overloaded reply \
           carrying a retry-after hint.")

let idle_timeout_arg =
  Arg.(
    value & opt float 300.0
    & info [ "idle-timeout" ] ~docv:"SECONDS"
        ~doc:
          "With --daemon: close a client connection after SECONDS with no \
           traffic and no in-flight requests.")

let http_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "http" ] ~docv:"PORT"
        ~doc:
          "With --daemon: serve the observability plane on loopback TCP \
           port PORT — GET /metrics (Prometheus exposition), /healthz \
           (200 ok, 503 once draining) and /statusz (JSON status \
           snapshot).  PORT 0 binds an ephemeral port, reported on \
           stderr at startup.")

let access_log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "access-log" ] ~docv:"FILE"
        ~doc:
          "With --daemon: append one JSON line per answered compile \
           request to FILE (timestamp, request id, worker, config, \
           digest, queue wait, duration, outcome, cache origin, trace \
           id).")

let drain_grace_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "drain-grace" ] ~docv:"SECONDS"
        ~doc:
          "With --daemon: keep the observability plane up for SECONDS \
           after a drain completes, so health checkers observe the \
           /healthz flip to draining before the process exits.")

let flight_capacity_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "flight-capacity" ] ~docv:"N"
        ~doc:
          "With --daemon: retain the last N errored requests and the N \
           slowest requests (span trees included) in the flight recorder \
           serving /debug/errors and /debug/slow (default 32).")

let flight_dump_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-dump" ] ~docv:"FILE"
        ~doc:
          "With --daemon: append the flight recorder's retained requests \
           to FILE as JSONL on SIGQUIT and on graceful drain — a \
           post-mortem that survives the process.")

let slo_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "slo" ] ~docv:"SPEC"
        ~doc:
          "With --daemon: watch a service-level objective, evaluated with \
           fast/slow burn-rate windows and served at /alertz and as \
           lime_slo_* metrics.  SPEC is [NAME=]KIND:OBJECTIVE[:THRESHOLD] \
           — e.g. 'latency:0.95:1.0' (95% of answered requests under \
           1.0s) or 'availability:0.99'.  Repeatable; default: \
           availability:0.99 and latency:0.95:1.0.")

let cache_capacity_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-capacity" ] ~docv:"N"
        ~doc:
          "In-memory kernel-cache capacity (LRU entries).  Default: 16 \
           for a single file, the batch size (at least 16) for --batch, \
           64 for --daemon.")

let optimize_arg =
  Arg.(
    value
    & opt (some (enum [ ("fig8", `Fig8); ("beam", `Beam) ])) None
    & info [ "optimize" ] ~docv:"MODE"
        ~doc:
          "Pick an optimization schedule on the --device model and print \
           the optimized placements (and, with --emit-opencl, the \
           optimized kernel).  'fig8' sweeps the paper's eight memory \
           configurations and takes the winner; 'beam' runs the rewrite \
           engine's beam search over composable kernel rewrites, which is \
           never worse than fig8 under the cost model.  Requires --shape; \
           with --cache-dir the winning schedule persists in the \
           tunestore and warm reruns replay it without re-searching.")

let opt_device_arg =
  Arg.(
    value & opt string "gtx580"
    & info [ "device" ] ~docv:"DEVICE"
        ~doc:
          "Device model --optimize scores against: gtx8800, gtx580, \
           hd5970, corei7 (default gtx580).")

let beam_width_arg =
  Arg.(
    value & opt int Search.default_width
    & info [ "beam-width" ] ~docv:"N"
        ~doc:"With --optimize beam: states kept per beam level.")

let beam_depth_arg =
  Arg.(
    value & opt int Search.default_depth
    & info [ "beam-depth" ] ~docv:"N"
        ~doc:"With --optimize beam: maximum rewrite-sequence length.")

let devices_arg =
  Arg.(
    value & flag
    & info [ "devices" ]
        ~doc:
          "Print the simulated device table (Table 2 roster: name, SMs, \
           FP32 lanes, clock, PCIe bandwidth, memory spaces) and exit.")

let multi_device_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "multi-device" ] ~docv:"auto|SPEC"
        ~doc:
          "With --run: execute the task pipeline across multiple devices \
           under a placement.  'auto' probes the pipeline and searches for \
           the placement with the best modeled overlapped makespan (with \
           --cache-dir the winner persists in the tunestore and warm \
           reruns replay it); a SPEC 'task=device,...' pins stages \
           explicitly (devices: gtx8800, gtx580, hd5970, corei7, host; \
           unmentioned tasks stay on the host).  --explain prints the \
           scored placement table.")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "With --optimize: report how the winner was found — the full \
           ranking for fig8, the baseline/fig8/beam comparison with \
           evaluation counts for beam.  With --multi-device: the scored \
           placement table.")

let cmd =
  let doc = "Lime-for-GPUs compiler (PLDI 2012 reproduction)" in
  Cmd.v
    (Cmd.info "limec" ~version:"1.0.0" ~doc)
    Term.(
      const run $ files $ worker $ config_name $ jobs_arg $ batch_arg
      $ daemon_arg $ connect_arg $ drain_arg $ deadline_ms_arg
      $ max_queue_arg $ idle_timeout_arg $ cache_capacity_arg $ http_arg
      $ access_log_arg $ drain_grace_arg $ flight_capacity_arg
      $ flight_dump_arg $ slo_arg $ dump_ast
      $ dump_ir $ placements $ emit_opencl $ emit_glue $ estimate
      $ sweep_arg $ counters_arg $ shapes $ cache_dir $ stats_arg $ run_arg
      $ run_args $ trace_arg $ profile_arg $ trace_summary_arg
      $ optimize_arg $ opt_device_arg $ beam_width_arg $ beam_depth_arg
      $ devices_arg $ multi_device_arg $ explain_arg)

let () = exit (Cmd.eval cmd)
